package fabric

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"openresolver/internal/core"
	"openresolver/internal/netsim"
	"openresolver/internal/obs"
	"openresolver/internal/paperdata"
)

// These tests pin the fabric's one non-negotiable property: a campaign
// distributed over any number of workers — including workers that die,
// stall past their lease, or deliver duplicates — produces byte-identical
// output to core.RunSimulation on one machine. The digests are compared
// with FaultDigest, the widest determinism digest the engine has.

const chaosSpec = "ge:0.02,0.3,0.05,0.9;dup:0.05;reorder:0.1,30ms;corrupt:0.02"

func pristineConfig(year paperdata.Year) core.Config {
	return core.Config{Year: year, SampleShift: 14, Seed: 1, KeepPackets: true, Workers: 1}
}

func chaosConfig(t *testing.T) core.Config {
	t.Helper()
	imps, err := netsim.ParseImpairments(chaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pristineConfig(paperdata.Y2018)
	cfg.Faults = core.FaultPlan{
		Impairments:     imps,
		Retries:         2,
		AdaptiveTimeout: true,
		UpstreamBackoff: true,
		MaxQueuedEvents: 1 << 21,
	}
	return cfg
}

// startCoordinator boots a coordinator on loopback with test-friendly
// pacing and registers cleanup.
func startCoordinator(t *testing.T, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	co := NewCoordinator(cfg)
	if err := co.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	return co
}

// startWorkers launches n RunWorker goroutines against co and returns a
// stop function that disconnects and reaps them.
func startWorkers(t *testing.T, co *Coordinator, n int) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			RunWorker(ctx, WorkerConfig{Addr: co.Addr(), Name: fmt.Sprintf("w%d", i)})
		}(i)
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

func runFabric(t *testing.T, co *Coordinator, cfg core.Config, loss string, workers int) *core.Dataset {
	t.Helper()
	stop := startWorkers(t, co, workers)
	defer stop()
	ds, err := co.RunCampaign(cfg, loss)
	if err != nil {
		t.Fatalf("fabric campaign (%d workers): %v", workers, err)
	}
	return ds
}

// TestFabricDigestIdentity is the acceptance gate: both campaign years,
// N ∈ {1, 2, 4} remote workers, byte-identical to the single-process run.
func TestFabricDigestIdentity(t *testing.T) {
	for _, year := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		cfg := pristineConfig(year)
		ref, err := core.RunSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := core.FaultDigest(ref)
		for _, n := range []int{1, 2, 4} {
			co := startCoordinator(t, CoordinatorConfig{})
			ds := runFabric(t, co, cfg, "", n)
			if got := core.FaultDigest(ds); got != want {
				t.Errorf("year %v: %d workers diverged from single-process\n got %s\nwant %s", year, n, got, want)
			}
			if ds.Report.RenderAll() != ref.Report.RenderAll() {
				t.Errorf("year %v: %d workers rendered report differs", year, n)
			}
		}
	}
}

// TestFabricChaosDigestIdentity repeats the gate under the PR 3 chaos
// stack: the impairment spec crosses the wire as a string, is re-parsed
// by every worker, and must still reproduce the laptop run bit for bit.
func TestFabricChaosDigestIdentity(t *testing.T) {
	cfg := chaosConfig(t)
	ref, err := core.RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := core.FaultDigest(ref)
	co := startCoordinator(t, CoordinatorConfig{})
	ds := runFabric(t, co, cfg, chaosSpec, 3)
	if got := core.FaultDigest(ds); got != want {
		t.Errorf("chaos stack over fabric diverged\n got %s\nwant %s", got, want)
	}
}

// rawWorker is a hand-driven protocol peer for fault-injection tests.
type rawWorker struct {
	t    *testing.T
	conn net.Conn
}

func dialRaw(t *testing.T, co *Coordinator) *rawWorker {
	t.Helper()
	conn, err := net.Dial("tcp", co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawWorker{t: t, conn: conn}
}

func (w *rawWorker) send(m *message) {
	w.t.Helper()
	if err := writeFrame(w.conn, m); err != nil {
		w.t.Fatalf("raw worker write: %v", err)
	}
}

func (w *rawWorker) recv() *message {
	w.t.Helper()
	m, err := readFrame(w.conn)
	if err != nil {
		w.t.Fatalf("raw worker read: %v", err)
	}
	return m
}

func (w *rawWorker) handshake() {
	w.t.Helper()
	w.send(&message{Type: msgHello, Proto: ProtoVersion, Name: "raw"})
	if m := w.recv(); m.Type != msgWelcome {
		w.t.Fatalf("expected WELCOME, got %+v", m)
	}
}

// lease sends READY and returns the granted LEASE.
func (w *rawWorker) lease() *message {
	w.t.Helper()
	w.send(&message{Type: msgReady})
	m := w.recv()
	if m.Type != msgLease {
		w.t.Fatalf("expected LEASE, got %+v", m)
	}
	return m
}

// TestVersionMismatchHello pins the refusal path: a worker speaking the
// wrong protocol version gets an ERROR frame naming both versions, then
// the connection closes.
func TestVersionMismatchHello(t *testing.T) {
	co := startCoordinator(t, CoordinatorConfig{})
	conn, err := net.Dial("tcp", co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, &message{Type: msgHello, Proto: ProtoVersion + 41}); err != nil {
		t.Fatal(err)
	}
	m, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != msgError || !strings.Contains(m.Error, "version mismatch") {
		t.Fatalf("expected a version-mismatch ERROR, got %+v", m)
	}
	if _, err := readFrame(conn); err == nil {
		t.Fatal("connection should close after a version refusal")
	}
}

// campaignEnvelope computes shard i's envelope out of band, exactly as a
// worker would, so raw-protocol tests can deliver real results.
func campaignEnvelope(t *testing.T, cfg core.Config, shard int) (key string, env []byte) {
	t.Helper()
	sc, err := core.OpenShardCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env, err = sc.RunShardEnvelope(shard)
	if err != nil {
		t.Fatal(err)
	}
	return sc.CampaignKey(), env
}

// TestDuplicateResult delivers the same RESULT twice: the second must be
// counted as a duplicate and dropped, and the merged campaign must stay
// byte-identical to the single-process run.
func TestDuplicateResult(t *testing.T) {
	cfg := pristineConfig(paperdata.Y2018)
	ref, err := core.RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, env := campaignEnvelope(t, cfg, 0)

	metrics := obs.NewShard("fabric")
	co := startCoordinator(t, CoordinatorConfig{Obs: metrics})

	raw := dialRaw(t, co)
	raw.handshake()
	results := make(chan *core.Dataset, 1)
	errs := make(chan error, 1)
	go func() {
		ds, err := co.RunCampaign(cfg, "")
		results <- ds
		errs <- err
	}()

	lease := raw.lease()
	if lease.Shard != 0 {
		t.Fatalf("first lease should be shard 0, got %d", lease.Shard)
	}
	raw.send(&message{Type: msgResult, Key: lease.Key, Shard: 0, Envelope: env})
	raw.send(&message{Type: msgResult, Key: lease.Key, Shard: 0, Envelope: env})
	// Drain the rest with real workers.
	stop := startWorkers(t, co, 2)
	defer stop()
	// The raw worker stops taking leases; close its half so the
	// coordinator isn't waiting on it.
	raw.conn.Close()

	ds := <-results
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if got, want := core.FaultDigest(ds), core.FaultDigest(ref); got != want {
		t.Errorf("digest diverged after duplicate RESULT\n got %s\nwant %s", got, want)
	}
	if n := metrics.Counter(obs.CFabricDupResults); n != 1 {
		t.Errorf("duplicate results counted: got %d, want 1", n)
	}
	if n := metrics.Counter(obs.CFabricResults); n == 0 {
		t.Error("no results counted")
	}
}

// TestWorkerDeathRequeues kills a worker that holds a lease (abrupt
// connection drop, as SIGKILL would produce) and checks the shard is
// requeued, finished elsewhere, and the output still byte-identical.
func TestWorkerDeathRequeues(t *testing.T) {
	cfg := pristineConfig(paperdata.Y2018)
	ref, err := core.RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewShard("fabric")
	co := startCoordinator(t, CoordinatorConfig{Obs: metrics})

	raw := dialRaw(t, co)
	raw.handshake()
	results := make(chan *core.Dataset, 1)
	errs := make(chan error, 1)
	go func() {
		ds, err := co.RunCampaign(cfg, "")
		results <- ds
		errs <- err
	}()
	lease := raw.lease()
	raw.conn.Close() // dies mid-shard, envelope never sent

	stop := startWorkers(t, co, 2)
	defer stop()
	ds := <-results
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if got, want := core.FaultDigest(ds), core.FaultDigest(ref); got != want {
		t.Errorf("digest diverged after worker death on shard %d\n got %s\nwant %s", lease.Shard, got, want)
	}
	if n := metrics.Counter(obs.CFabricRequeued); n == 0 {
		t.Error("dead worker's shard was never requeued")
	}
	if n := metrics.Counter(obs.CFabricWorkersGone); n == 0 {
		t.Error("worker disconnect not counted")
	}
}

// TestLeaseExpiryRacesLateResult pins the subtlest failure mode: a worker
// stalls past its lease (shard requeued), then delivers a valid RESULT
// late. The late envelope wins if the shard hasn't been recorded yet; the
// rerun's envelope then dedups away — either way exactly one envelope
// merges and the bytes never change.
func TestLeaseExpiryRacesLateResult(t *testing.T) {
	cfg := pristineConfig(paperdata.Y2018)
	ref, err := core.RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, env := campaignEnvelope(t, cfg, 0)

	metrics := obs.NewShard("fabric")
	co := startCoordinator(t, CoordinatorConfig{
		Heartbeat:    50 * time.Millisecond,
		LeaseTimeout: 250 * time.Millisecond,
		Obs:          metrics,
	})

	raw := dialRaw(t, co)
	raw.handshake()
	results := make(chan *core.Dataset, 1)
	errs := make(chan error, 1)
	go func() {
		ds, err := co.RunCampaign(cfg, "")
		results <- ds
		errs <- err
	}()
	lease := raw.lease()
	if lease.Shard != 0 {
		t.Fatalf("first lease should be shard 0, got %d", lease.Shard)
	}
	// Stall without heartbeats until the lease has certainly expired and
	// shard 0 is back in the queue, then deliver the result late (inside
	// the post-expiry grace window).
	deadline := time.Now().Add(5 * time.Second)
	for metrics.Counter(obs.CFabricLeaseExpired) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	raw.send(&message{Type: msgResult, Key: lease.Key, Shard: 0, Envelope: env})

	stop := startWorkers(t, co, 2)
	defer stop()
	ds := <-results
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if got, want := core.FaultDigest(ds), core.FaultDigest(ref); got != want {
		t.Errorf("digest diverged after lease-expiry race\n got %s\nwant %s", got, want)
	}
	if n := metrics.Counter(obs.CFabricLeaseExpired); n == 0 {
		t.Error("lease expiry not counted")
	}
	if n := metrics.Counter(obs.CFabricRequeued); n == 0 {
		t.Error("expired lease's shard not requeued")
	}
}

// TestWorkerRefusedByFakeCoordinator checks RunWorker surfaces a
// coordinator ERROR (the other half of the version handshake).
func TestWorkerRefusedByFakeCoordinator(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		readFrame(conn) // HELLO
		writeFrame(conn, &message{Type: msgError, Proto: ProtoVersion + 1,
			Error: "fabric: protocol version mismatch: coordinator speaks v99, worker v1"})
	}()
	err = RunWorker(context.Background(), WorkerConfig{Addr: ln.Addr().String()})
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("worker should surface the refusal, got %v", err)
	}
}

// TestCoordinatorCancellation: cancelling the campaign context abandons
// the run with core.ErrInterrupted even with no workers connected.
func TestCoordinatorCancellation(t *testing.T) {
	co := startCoordinator(t, CoordinatorConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cfg := pristineConfig(paperdata.Y2018)
	cfg.Ctx = ctx
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := co.RunCampaign(cfg, "")
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("cancelled campaign: got %v, want ErrInterrupted", err)
	}
}
