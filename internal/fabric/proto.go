// Package fabric distributes a sharded simulation campaign across
// processes and machines (DESIGN.md §15). A coordinator expands the
// campaign into the same fixed shard plan a single-process run computes,
// hands out shard leases to workers over a small length-prefixed
// JSON-over-TCP job protocol, and folds the returned checkpoint envelopes
// through the ordered merge — so a campaign spread over N remote workers
// is byte-identical to `orsurvey -workers N` on one machine.
//
// The protocol is deliberately thin because the hard guarantees live
// below it, in internal/core:
//
//   - the shard plan is a pure function of the campaign Config, so both
//     sides derive it independently and only shard *indexes* cross the
//     wire;
//   - results travel as the self-validating checkpoint envelope of
//     DESIGN.md §13, verbatim — the coordinator re-verifies version,
//     campaign key, shard index and payload digest before merging, so a
//     corrupted or mismatched envelope degrades to "rerun shard";
//   - the merge folds shards in plan order with at-most-once recording,
//     so duplicate RESULTs, lease-expiry races and worker crashes cannot
//     change a byte of the output, only the wall-clock time.
//
// Wire format: every message is a frame of a 4-byte big-endian length
// followed by that many bytes of JSON. The conversation is strictly
// paired from the worker's point of view:
//
//	worker → HELLO{proto, name}        coordinator → WELCOME{proto, heartbeat}
//	worker → READY                     coordinator → LEASE{key, spec, shard} | DONE
//	worker → PROGRESS{shard}…          (heartbeats while the shard runs)
//	worker → RESULT{key, shard, envelope} | NACK{key, shard, error}
//	worker → READY                     …
//
// A coordinator that cannot speak the worker's protocol version answers
// HELLO with ERROR and closes the connection.
package fabric

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"openresolver/internal/core"
	"openresolver/internal/netsim"
	"openresolver/internal/paperdata"
)

// ProtoVersion is the fabric protocol version. HELLO carries it; the
// coordinator refuses workers whose version differs, because a version
// skew could mean a different shard plan or envelope layout — and the
// whole design rests on both sides deriving identical bytes.
const ProtoVersion = 1

// maxFrame bounds a single frame. The largest legitimate frame is a
// RESULT carrying one shard's checkpoint envelope — a few MiB at paper
// scale — so 64 MiB rejects corrupt or hostile length prefixes without
// ever clipping real traffic.
const maxFrame = 64 << 20

// Message types.
const (
	msgHello    = "hello"
	msgWelcome  = "welcome"
	msgReady    = "ready"
	msgLease    = "lease"
	msgDone     = "done"
	msgProgress = "progress"
	msgResult   = "result"
	msgNack     = "nack"
	msgError    = "error"
)

// message is the single wire envelope; Type selects which fields are
// meaningful. One struct instead of one type per message keeps the
// framing layer trivial: every frame decodes the same way, and unknown
// fields from a (hypothetical) newer same-version peer are ignored.
type message struct {
	Type string `json:"type"`
	// Proto is the sender's protocol version (HELLO, WELCOME).
	Proto int `json:"proto,omitempty"`
	// Name labels the worker in coordinator logs (HELLO).
	Name string `json:"name,omitempty"`
	// Key is the campaign key the message concerns (LEASE, RESULT, NACK).
	Key string `json:"key,omitempty"`
	// HeartbeatMillis tells the worker how often to send PROGRESS while a
	// shard runs (WELCOME).
	HeartbeatMillis int64 `json:"heartbeat_millis,omitempty"`
	// Spec describes the campaign so the worker can compile it (LEASE).
	Spec *CampaignSpec `json:"spec,omitempty"`
	// Shard is the shard index (LEASE, PROGRESS, RESULT, NACK). Never
	// omitempty: shard 0 is a real shard.
	Shard int `json:"shard"`
	// Envelope is the shard's checkpoint envelope, verbatim (RESULT).
	Envelope []byte `json:"envelope,omitempty"`
	// Error describes a failure (NACK, ERROR).
	Error string `json:"error,omitempty"`
}

// writeFrame marshals m and writes it as one length-prefixed frame.
// Header and body go out in a single Write so a frame is never torn by
// the sender (the reader still tolerates torn frames from dying peers).
func writeFrame(w io.Writer, m *message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("fabric: marshal %s: %w", m.Type, err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("fabric: %s frame of %d bytes exceeds the %d-byte limit", m.Type, len(body), maxFrame)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	_, err = w.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame. A connection that dies
// mid-prefix or mid-body surfaces as io.ErrUnexpectedEOF (io.EOF only at
// a clean frame boundary); a length prefix beyond maxFrame is rejected
// before any allocation, so a corrupt prefix cannot balloon memory.
func readFrame(r io.Reader) (*message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("fabric: torn frame: connection closed inside a length prefix: %w", err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("fabric: frame of %d bytes exceeds the %d-byte limit", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("fabric: torn frame: connection closed inside a %d-byte body: %w", n, io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	var m message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("fabric: bad frame: %w", err)
	}
	return &m, nil
}

// CampaignSpec is the wire description of a campaign — every core.Config
// field that shapes the campaign's bytes, and nothing that doesn't
// (Workers, Obs, Ctx and Checkpoints are deliberately absent, exactly as
// they are absent from the campaign key). Loss carries the impairment
// plan as the original CLI spec string because that grammar is the
// parseable canonical form; the worker re-parses it and the campaign key
// proves both sides compiled the same plan.
type CampaignSpec struct {
	Year      int    `json:"year"`
	Shift     uint8  `json:"shift"`
	Seed      int64  `json:"seed"`
	PPS       uint64 `json:"pps,omitempty"`
	Keep      bool   `json:"keep_packets,omitempty"`
	Loss      string `json:"loss,omitempty"`
	Retries   int    `json:"retries,omitempty"`
	Adaptive  bool   `json:"adaptive_timeout,omitempty"`
	Backoff   bool   `json:"upstream_backoff,omitempty"`
	MaxEvents int    `json:"max_events,omitempty"`
}

// SpecFor builds the wire spec for cfg. lossSpec must be the CLI
// impairment string cfg.Faults.Impairments was parsed from ("" or "none"
// for a pristine network) — the spec cannot be recovered from the parsed
// plan, so the caller that parsed it must pass it through.
func SpecFor(cfg core.Config, lossSpec string) CampaignSpec {
	if lossSpec == "none" {
		lossSpec = ""
	}
	return CampaignSpec{
		Year:      int(cfg.Year),
		Shift:     cfg.SampleShift,
		Seed:      cfg.Seed,
		PPS:       cfg.PacketsPerSec,
		Keep:      cfg.KeepPackets,
		Loss:      lossSpec,
		Retries:   cfg.Faults.Retries,
		Adaptive:  cfg.Faults.AdaptiveTimeout,
		Backoff:   cfg.Faults.UpstreamBackoff,
		MaxEvents: cfg.Faults.MaxQueuedEvents,
	}
}

// Config compiles the spec back into a runnable core.Config. The result
// has no Workers/Obs/Ctx/Checkpoints — the worker supplies its own
// runtime plumbing; the campaign key confirms the bytes-shaping fields
// round-tripped.
func (s CampaignSpec) Config() (core.Config, error) {
	var imps []netsim.Impairment
	if s.Loss != "" && s.Loss != "none" {
		var err error
		if imps, err = netsim.ParseImpairments(s.Loss); err != nil {
			return core.Config{}, fmt.Errorf("fabric: campaign spec: %w", err)
		}
	}
	return core.Config{
		Year:          paperdata.Year(s.Year),
		SampleShift:   s.Shift,
		Seed:          s.Seed,
		PacketsPerSec: s.PPS,
		KeepPackets:   s.Keep,
		Faults: core.FaultPlan{
			Impairments:     imps,
			Retries:         s.Retries,
			AdaptiveTimeout: s.Adaptive,
			UpstreamBackoff: s.Backoff,
			MaxQueuedEvents: s.MaxEvents,
		},
	}, nil
}
