package fabric

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"openresolver/internal/netsim"
)

// The framing layer's failure modes are where a distributed protocol
// rots: a dying peer tears a frame, a corrupt prefix asks for gigabytes,
// a version-skewed peer speaks a different dialect. Each must surface as
// a crisp error, never a hang or an allocation bomb.

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &message{Type: msgResult, Key: "k", Shard: 0, Envelope: []byte("payload")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Key != in.Key || out.Shard != 0 || string(out.Envelope) != "payload" {
		t.Fatalf("round trip mangled the frame: %+v", out)
	}
}

// Shard 0 must survive JSON marshalling — an omitempty tag on Shard
// would silently turn "shard 0" into "no shard field".
func TestFrameShardZeroSurvives(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, &message{Type: msgLease, Shard: 0}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"shard":0`)) {
		t.Fatalf("shard 0 dropped from the wire: %s", buf.Bytes()[4:])
	}
}

func TestReadFrameTornPrefix(t *testing.T) {
	_, err := readFrame(strings.NewReader("\x00\x00"))
	if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn prefix: got %v, want ErrUnexpectedEOF", err)
	}
	if !strings.Contains(err.Error(), "torn frame") {
		t.Fatalf("torn prefix error should say so: %v", err)
	}
}

func TestReadFrameTornBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString(`{"type":"ready"`) // 15 of the promised 100 bytes
	_, err := readFrame(&buf)
	if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn body: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	if _, err := readFrame(strings.NewReader("")); err != io.EOF {
		t.Fatalf("clean close at a frame boundary must be io.EOF, got %v", err)
	}
}

func TestReadFrameOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	_, err := readFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized frame: got %v, want a limit rejection", err)
	}
}

func TestWriteFrameOversized(t *testing.T) {
	err := writeFrame(io.Discard, &message{Type: msgResult, Envelope: make([]byte, maxFrame)})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized write: got %v, want a limit rejection", err)
	}
}

// The wire spec must round-trip every bytes-shaping Config field through
// JSON and back into an identical fault plan — this is what lets the
// campaign key certify coordinator/worker agreement.
func TestCampaignSpecRoundTrip(t *testing.T) {
	const loss = "ge:0.02,0.3,0.05,0.9;dup:0.05;reorder:0.1,30ms;corrupt:0.02"
	imps, err := netsim.ParseImpairments(loss)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(t)
	spec := SpecFor(cfg, loss)
	got, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if got.Year != cfg.Year || got.SampleShift != cfg.SampleShift || got.Seed != cfg.Seed ||
		got.KeepPackets != cfg.KeepPackets || got.PacketsPerSec != cfg.PacketsPerSec {
		t.Fatalf("scalar fields diverged: %+v vs %+v", got, cfg)
	}
	if got.Faults.Retries != cfg.Faults.Retries || got.Faults.AdaptiveTimeout != cfg.Faults.AdaptiveTimeout ||
		got.Faults.UpstreamBackoff != cfg.Faults.UpstreamBackoff || got.Faults.MaxQueuedEvents != cfg.Faults.MaxQueuedEvents {
		t.Fatalf("fault plan diverged: %+v vs %+v", got.Faults, cfg.Faults)
	}
	if netsim.DescribeImpairments(got.Faults.Impairments) != netsim.DescribeImpairments(imps) {
		t.Fatalf("impairments diverged: %s vs %s",
			netsim.DescribeImpairments(got.Faults.Impairments), netsim.DescribeImpairments(imps))
	}
	if s := SpecFor(cfg, "none"); s.Loss != "" {
		t.Fatalf(`"none" should normalize to an empty loss spec, got %q`, s.Loss)
	}
}
