// Package drift implements the continuous-monitoring capability the paper
// argues for in §V: the Open Resolver Project stopped publishing in 2017
// and existing scans "do not provide any behavioral analysis", so the
// paper calls for "a systematic and constant follow-up of the behavioral
// analysis in the open resolver ecosystem".
//
// The package provides that harness: it runs a behaviorally-analyzed
// campaign per monitoring epoch and reports the trend of the indicators
// the paper tracks (population size, answer error rate, manipulated and
// malicious answers). Between the two snapshots the paper measured, the
// ecosystem is modeled by linear interpolation of the calibrated 2013 and
// 2018 populations — a deployment against the live Internet would swap the
// interpolated population for real probing while keeping the entire
// pipeline identical.
package drift

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"openresolver/internal/analysis"
	"openresolver/internal/core"
	"openresolver/internal/obs"
	"openresolver/internal/paperdata"
	"openresolver/internal/population"
	"openresolver/internal/threatintel"
)

// Config parameterizes the monitoring trend.
type Config struct {
	// Epochs is the number of evenly spaced campaigns between the 2013 and
	// 2018 snapshots, inclusive (≥ 2).
	Epochs int
	// SampleShift scales each campaign (as in core.Config).
	SampleShift uint8
	// Seed drives population construction.
	Seed int64
	// Workers bounds the worker goroutines of each epoch's campaign (as in
	// core.Config: 0 = all cores, 1 = serial). Epochs themselves run
	// sequentially — each depends on nothing but its own mixed population,
	// yet keeping them ordered makes progress output and memory use
	// predictable while the inner pipeline saturates the cores.
	Workers int
	// Mode selects the campaign engine per epoch: "synth" (default, the
	// full-scale synthetic stream) or "sim" (the discrete-event network,
	// which honors Faults and needs SampleShift ≥ 6).
	Mode string
	// Faults injects network impairments and enables the retransmission
	// machinery in every epoch (sim mode only).
	Faults core.FaultPlan
	// Obs, when non-nil, receives every epoch's observability stream: an
	// "epoch <label>" span wraps each campaign, and the campaign's own
	// spans and metrics shards nest inside (see core.Config.Obs).
	Obs *obs.Registry
	// Ctx, when non-nil, allows cooperative cancellation: the in-flight
	// epoch's campaign drains at its next shard boundary, and Trend returns
	// the completed epochs' points alongside core.ErrInterrupted — a
	// partial trend the caller may still render.
	Ctx context.Context
}

// Point is one monitoring epoch's summary.
type Point struct {
	// Label is the interpolated position, e.g. "2013.0", "2015.5".
	Label string
	// Weight is the 2018 share of the mixture in [0, 1].
	Weight float64
	// Report is the epoch's full behavioral analysis.
	Report *analysis.Report
}

// Interpolator models the ecosystem between the paper's two snapshots: it
// holds the calibrated 2013 and 2018 populations (built once) and mixes
// them linearly at any weight, together with the merged threat feed the
// analyzer needs to recognize malicious addresses from either snapshot.
// Both the epoch loop of Trend and the sweep runner's fractional year axis
// (cmd/orsweep, e.g. "2015.5") interpolate through it, so the two paths
// cannot diverge on what an intermediate year means.
type Interpolator struct {
	pop13, pop18 *population.Population
	merged       *threatintel.DB
}

// NewInterpolator builds the two endpoint populations and the merged
// threat database at the given scale and seed.
func NewInterpolator(shift uint8, seed int64) (*Interpolator, error) {
	feed13 := threatintel.NewFeed(paperdata.Y2013, seed)
	feed18 := threatintel.NewFeed(paperdata.Y2018, seed)
	pop13, err := population.Build(population.Config{
		Year: paperdata.Y2013, SampleShift: shift, Seed: seed, Feed: feed13,
	})
	if err != nil {
		return nil, err
	}
	pop18, err := population.Build(population.Config{
		Year: paperdata.Y2018, SampleShift: shift, Seed: seed, Feed: feed18,
	})
	if err != nil {
		return nil, err
	}
	// The analyzer must recognize malicious addresses from both snapshots.
	merged := threatintel.NewDB()
	for _, f := range []*threatintel.Feed{feed13, feed18} {
		for _, addr := range f.DB.Addrs() {
			rec, _ := f.DB.Lookup(addr)
			merged.Add(addr, rec.Reports...)
		}
	}
	return &Interpolator{pop13: pop13, pop18: pop18, merged: merged}, nil
}

// At mixes the endpoint populations at weight w ∈ [0, 1] (the 2018 share).
func (ip *Interpolator) At(w float64) (*population.Population, error) {
	if w < 0 || w > 1 {
		return nil, fmt.Errorf("drift: interpolation weight %v outside [0, 1]", w)
	}
	return population.Mix(ip.pop13, ip.pop18, w)
}

// Threat returns the merged 2013+2018 threat database every interpolated
// campaign must analyze against.
func (ip *Interpolator) Threat() *threatintel.DB { return ip.merged }

// Label renders weight w as the interpolated calendar position between the
// snapshots, e.g. 0 → "2013.0", 0.5 → "2015.5".
func Label(w float64) string { return fmt.Sprintf("%.1f", 2013+5*w) }

// Trend runs the monitoring campaigns and returns one point per epoch.
func Trend(cfg Config) ([]Point, error) {
	if cfg.Epochs < 2 {
		return nil, fmt.Errorf("drift: need at least 2 epochs")
	}
	switch cfg.Mode {
	case "", "synth", "sim":
	default:
		return nil, fmt.Errorf("drift: unknown mode %q (want synth or sim)", cfg.Mode)
	}
	interp, err := NewInterpolator(cfg.SampleShift, cfg.Seed)
	if err != nil {
		return nil, err
	}
	merged := interp.Threat()

	points := make([]Point, 0, cfg.Epochs)
	for i := 0; i < cfg.Epochs; i++ {
		w := float64(i) / float64(cfg.Epochs-1)
		mixed, err := interp.At(w)
		if err != nil {
			return nil, err
		}
		ccfg := core.Config{
			Year: paperdata.Y2018, SampleShift: cfg.SampleShift, Seed: cfg.Seed + int64(i),
			Workers: cfg.Workers, Faults: cfg.Faults, Obs: cfg.Obs, Ctx: cfg.Ctx,
		}
		label := Label(w)
		sp := cfg.Obs.Tracer().Begin("epoch " + label)
		var ds *core.Dataset
		if cfg.Mode == "sim" {
			ds, err = core.SimulatePopulation(ccfg, mixed, merged)
		} else {
			ds, err = core.SynthesizePopulation(ccfg, mixed, merged)
		}
		cfg.Obs.Tracer().End(sp)
		if errors.Is(err, core.ErrInterrupted) {
			// Hand back the epochs that finished: a partial trend is still a
			// trend, and the caller decides whether to render it.
			return points, fmt.Errorf("epoch %d (%s): %w", i, label, err)
		}
		if err != nil {
			return nil, fmt.Errorf("epoch %d: %w", i, err)
		}
		points = append(points, Point{
			Label:  label,
			Weight: w,
			Report: ds.Report,
		})
	}
	return points, nil
}

// RenderTrend formats the monitored indicators as a text table.
func RenderTrend(points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %10s %10s %8s %10s\n",
		"epoch", "responders", "open (RA1)", "incorrect", "malicious", "Err(%)", "countries")
	for _, p := range points {
		r := p.Report
		fmt.Fprintf(&b, "%-8s %12d %12d %10d %10d %8.3f %10d\n",
			p.Label,
			r.Correctness.R2,
			r.Estimates.RAOnly,
			r.Correctness.Incorr,
			r.MaliciousTotal.R2,
			r.Correctness.ErrPct(),
			len(r.MaliciousGeo),
		)
	}
	return b.String()
}
