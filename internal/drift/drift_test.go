package drift

import (
	"strings"
	"testing"

	"openresolver/internal/core"
	"openresolver/internal/netsim"
	"openresolver/internal/paperdata"
)

func TestTrendEndpointsMatchSnapshots(t *testing.T) {
	points, err := Trend(Config{Epochs: 3, SampleShift: 9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	first, mid, last := points[0].Report, points[1].Report, points[2].Report

	// Endpoint epochs must equal the pure-year campaigns at this scale.
	want13 := (paperdata.Campaigns[paperdata.Y2013].R2 + 256) >> 9
	if first.Correctness.R2+first.EmptyQ.Total != want13 {
		t.Errorf("epoch 2013: R2 = %d, want %d", first.Correctness.R2+first.EmptyQ.Total, want13)
	}
	want18 := (paperdata.Campaigns[paperdata.Y2018].R2 + 256) >> 9
	if last.Correctness.R2+last.EmptyQ.Total != want18 {
		t.Errorf("epoch 2018: R2 = %d, want %d", last.Correctness.R2+last.EmptyQ.Total, want18)
	}

	// The paper's trend directions: population shrinks, error rate grows,
	// malicious answers grow.
	if !(first.Correctness.R2 > mid.Correctness.R2 && mid.Correctness.R2 > last.Correctness.R2) {
		t.Errorf("population trend not monotone: %d %d %d",
			first.Correctness.R2, mid.Correctness.R2, last.Correctness.R2)
	}
	if !(first.Correctness.ErrPct() < last.Correctness.ErrPct()) {
		t.Errorf("error rate did not grow: %.3f → %.3f",
			first.Correctness.ErrPct(), last.Correctness.ErrPct())
	}
	if !(first.MaliciousTotal.R2 < last.MaliciousTotal.R2) {
		t.Errorf("malicious answers did not grow: %d → %d",
			first.MaliciousTotal.R2, last.MaliciousTotal.R2)
	}
	// Middle epoch lies strictly between the endpoints.
	if !(mid.MaliciousTotal.R2 >= first.MaliciousTotal.R2 && mid.MaliciousTotal.R2 <= last.MaliciousTotal.R2) {
		t.Errorf("mid malicious %d outside [%d, %d]",
			mid.MaliciousTotal.R2, first.MaliciousTotal.R2, last.MaliciousTotal.R2)
	}
}

func TestTrendLabels(t *testing.T) {
	points, err := Trend(Config{Epochs: 6, SampleShift: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Label != "2013.0" || points[5].Label != "2018.0" {
		t.Errorf("labels = %s … %s", points[0].Label, points[5].Label)
	}
	if points[1].Label != "2014.0" {
		t.Errorf("second label = %s", points[1].Label)
	}
	out := RenderTrend(points)
	if !strings.Contains(out, "2013.0") || !strings.Contains(out, "2018.0") {
		t.Errorf("render missing epochs:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 7 {
		t.Errorf("render rows:\n%s", out)
	}
}

func TestTrendValidation(t *testing.T) {
	if _, err := Trend(Config{Epochs: 1}); err == nil {
		t.Error("single epoch accepted")
	}
	if _, err := Trend(Config{Epochs: 2, Mode: "quantum"}); err == nil {
		t.Error("unknown mode accepted")
	}
	// Fault plans need a network to impair: synth-mode epochs must refuse.
	if _, err := Trend(Config{Epochs: 2, SampleShift: 9, Faults: core.FaultPlan{Retries: 3}}); err == nil {
		t.Error("fault plan accepted in synth mode")
	}
}

// TestTrendSimModeWithFaults runs a two-epoch simulated trend under burst
// loss with retransmission: each epoch must report the fault and
// retransmission activity while keeping the trend machinery intact.
func TestTrendSimModeWithFaults(t *testing.T) {
	imps, err := netsim.ParseImpairments("ge:0.05,0.2,0.125,1.0")
	if err != nil {
		t.Fatal(err)
	}
	points, err := Trend(Config{
		Epochs: 2, SampleShift: 16, Seed: 1, Mode: "sim",
		Faults: core.FaultPlan{
			Impairments:     imps,
			Retries:         3,
			AdaptiveTimeout: true,
			UpstreamBackoff: true,
			MaxQueuedEvents: 1 << 21,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		if p.Report.Correctness.R2 == 0 {
			t.Errorf("epoch %d collected no responses under retransmission", i)
		}
	}
}

// TestInterpolator pins the exported interpolation surface the sweep
// runner's fractional year axis builds on: endpoint weights reproduce the
// pure populations, labels render the calendar position, out-of-range
// weights are rejected, and the merged threat DB covers both feeds.
func TestInterpolator(t *testing.T) {
	interp, err := NewInterpolator(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		w     float64
		label string
	}{
		{0, "2013.0"}, {0.5, "2015.5"}, {1, "2018.0"},
	} {
		if got := Label(tc.w); got != tc.label {
			t.Errorf("Label(%v) = %q, want %q", tc.w, got, tc.label)
		}
		pop, err := interp.At(tc.w)
		if err != nil {
			t.Fatalf("At(%v): %v", tc.w, err)
		}
		if pop.ExpectedR2 == 0 {
			t.Errorf("At(%v): empty population", tc.w)
		}
	}
	if _, err := interp.At(1.5); err == nil {
		t.Error("weight 1.5 accepted")
	}
	if _, err := interp.At(-0.1); err == nil {
		t.Error("weight -0.1 accepted")
	}
	if interp.Threat() == nil || len(interp.Threat().Addrs()) == 0 {
		t.Error("merged threat DB empty")
	}
}
