package population

import (
	"testing"

	"openresolver/internal/geo"
	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
	"openresolver/internal/scan"
)

func buildScaled(t *testing.T, y paperdata.Year, shift uint8) (*Population, *scan.Universe) {
	t.Helper()
	pop, err := Build(Config{Year: y, SampleShift: shift, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	u, err := scan.NewUniverse(9, shift, ipv4.NewReservedBlocklist())
	if err != nil {
		t.Fatal(err)
	}
	return pop, u
}

func TestAssignerUniqueInUniverse(t *testing.T) {
	pop, u := buildScaled(t, paperdata.Y2018, 10)
	infra := []ipv4.Addr{
		ipv4.MustParseAddr("132.170.3.9"), ipv4.MustParseAddr("198.41.0.4"),
		ipv4.MustParseAddr("192.5.6.30"), ipv4.MustParseAddr("45.76.1.10"),
	}
	a, err := NewAssigner(u, geo.DefaultRegistry(), pop, infra...)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[ipv4.Addr]bool)
	infraSet := map[ipv4.Addr]bool{}
	for _, ip := range infra {
		infraSet[ip] = true
	}
	for _, c := range pop.Cohorts {
		for i := uint64(0); i < c.Count; i++ {
			addr, err := a.Next(c.Country)
			if err != nil {
				t.Fatalf("cohort %s/%s: %v", c.Class, c.Country, err)
			}
			if seen[addr] {
				t.Fatalf("address %v assigned twice", addr)
			}
			seen[addr] = true
			if !u.Contains(addr) {
				t.Fatalf("address %v outside the scan universe", addr)
			}
			if infraSet[addr] {
				t.Fatalf("infrastructure address %v assigned", addr)
			}
		}
	}
	if uint64(len(seen)) != pop.ExpectedR2 {
		t.Errorf("assigned %d addresses, want %d", len(seen), pop.ExpectedR2)
	}
}

func TestAssignerCountryPlacement(t *testing.T) {
	pop, u := buildScaled(t, paperdata.Y2018, 10)
	reg := geo.DefaultRegistry()
	a, err := NewAssigner(u, reg, pop)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range pop.Cohorts {
		for i := uint64(0); i < c.Count; i++ {
			addr, err := a.Next(c.Country)
			if err != nil {
				t.Fatal(err)
			}
			if c.Country == "" {
				continue
			}
			if got := reg.Country(addr); got != c.Country {
				t.Fatalf("cohort wants %s, address %v geolocates to %s", c.Country, addr, got)
			}
		}
	}
}

func TestAssignerDeterministic(t *testing.T) {
	pop, u := buildScaled(t, paperdata.Y2013, 12)
	reg := geo.DefaultRegistry()
	gen := func() []ipv4.Addr {
		a, err := NewAssigner(u, reg, pop)
		if err != nil {
			t.Fatal(err)
		}
		var out []ipv4.Addr
		for _, c := range pop.Cohorts {
			for i := uint64(0); i < c.Count; i++ {
				addr, err := a.Next(c.Country)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, addr)
			}
		}
		return out
	}
	x, y := gen(), gen()
	if len(x) != len(y) {
		t.Fatal("lengths differ")
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("assignment %d differs: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestAssignerCountryReservationExhaustion(t *testing.T) {
	pop, u := buildScaled(t, paperdata.Y2018, 12)
	a, err := NewAssigner(u, geo.DefaultRegistry(), pop)
	if err != nil {
		t.Fatal(err)
	}
	// Drain a reserved country fully, then one more must fail.
	var usCount uint64
	for _, c := range pop.Cohorts {
		if c.Country == "US" {
			usCount += c.Count
		}
	}
	if usCount == 0 {
		t.Skip("no US malicious cohorts at this scale")
	}
	for i := uint64(0); i < usCount; i++ {
		if _, err := a.Next("US"); err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
	}
	if _, err := a.Next("US"); err == nil {
		t.Error("over-drawing the US reservation succeeded")
	}
}

func TestAssignerUnknownCountry(t *testing.T) {
	pop, u := buildScaled(t, paperdata.Y2018, 12)
	a, err := NewAssigner(u, geo.DefaultRegistry(), pop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Next("XX"); err == nil {
		t.Error("unknown country accepted")
	}
}

func TestAssignerRejectsImpossibleCountryLoad(t *testing.T) {
	// A universe sampled so thinly that a country's blocks cannot host its
	// cohort must fail at construction, not at Next.
	pop := &Population{
		Year: paperdata.Y2018,
		Cohorts: []Cohort{
			{Count: 1 << 21, Class: ClassMalicious, Country: "VA"}, // /12 seat holds at most 2^20
		},
	}
	u, err := scan.NewUniverse(1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAssigner(u, geo.DefaultRegistry(), pop); err == nil {
		t.Error("oversized country cohort accepted")
	}
}
