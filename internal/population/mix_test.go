package population

import (
	"math"
	"testing"
	"testing/quick"

	"openresolver/internal/paperdata"
)

func TestMixEndpoints(t *testing.T) {
	a, u := buildScaled(t, paperdata.Y2013, 10)
	_ = u
	b, err := Build(Config{Year: paperdata.Y2018, SampleShift: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	pure13, err := Mix(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pure13.ExpectedR2 != a.ExpectedR2 {
		t.Errorf("w=0: R2 = %d, want %d", pure13.ExpectedR2, a.ExpectedR2)
	}
	pure18, err := Mix(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pure18.ExpectedR2 != b.ExpectedR2 {
		t.Errorf("w=1: R2 = %d, want %d", pure18.ExpectedR2, b.ExpectedR2)
	}
	if pure18.ExpectedQ2 != b.ExpectedQ2 {
		t.Errorf("w=1: Q2 = %d, want %d", pure18.ExpectedQ2, b.ExpectedQ2)
	}
}

func TestMixPropertyTotals(t *testing.T) {
	a, _ := buildScaled(t, paperdata.Y2013, 12)
	b, err := Build(Config{Year: paperdata.Y2018, SampleShift: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	f := func(wRaw uint8) bool {
		w := float64(wRaw) / 255
		m, err := Mix(a, b, w)
		if err != nil {
			return false
		}
		want := uint64(math.Round(float64(a.ExpectedR2)*(1-w))) +
			uint64(math.Round(float64(b.ExpectedR2)*w))
		if m.ExpectedR2 != want {
			return false
		}
		// Class structure survives: every cohort class appears in a or b.
		var q2 uint64
		for _, c := range m.Cohorts {
			if c.Count == 0 {
				return false
			}
			q2 += c.Count * uint64(c.Profile.Upstream)
		}
		return q2 == m.ExpectedQ2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMixValidation(t *testing.T) {
	a, _ := buildScaled(t, paperdata.Y2013, 12)
	b, err := Build(Config{Year: paperdata.Y2018, SampleShift: 11, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mix(a, b, 0.5); err == nil {
		t.Error("mixed scales accepted")
	}
	if _, err := Mix(a, a, -0.1); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Mix(a, a, 1.1); err == nil {
		t.Error("weight > 1 accepted")
	}
}
