package population

import (
	"fmt"
	"math/rand"

	"openresolver/internal/behavior"
	"openresolver/internal/dist"
	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
)

// builder accumulates cohorts during full-scale construction.
type builder struct {
	cfg     Config
	feed    feedSource
	cohorts []Cohort
	rng     *rand.Rand
	used    map[ipv4.Addr]bool
}

// feedSource is the slice of threatintel.Feed the builder needs.
type feedSource interface {
	Addresses(cat paperdata.MalCategory) []ipv4.Addr
}

func (b *builder) build() error {
	b.rng = rand.New(rand.NewSource(b.cfg.Seed ^ 0x706F70))
	b.used = make(map[ipv4.Addr]bool)
	y := b.cfg.Year
	// Pre-size the cohort slice: construction emits roughly one cohort per
	// unique payload, and letting a slice this large grow geometrically was
	// the single biggest allocator in the whole campaign benchmark.
	b.cohorts = make([]Cohort, 0, b.estimateCohorts())

	ra := paperdata.RATable[y]
	aa := paperdata.ReconciledAA(y)

	// ---- Correct class -------------------------------------------------
	corrCells, err := joinCells(
		[2]uint64{ra.Flag0.Correct, ra.Flag1.Correct},
		[2]uint64{aa.Flag0.Correct, aa.Flag1.Correct})
	if err != nil {
		return fmt.Errorf("correct class: %w", err)
	}
	for i, n := range corrCells {
		if n == 0 {
			continue
		}
		b.emit(Cohort{
			Count: n, Class: ClassCorrect,
			Profile: behavior.Profile{
				RA: flagCells[i].ra, AA: flagCells[i].aa,
				Rcode: dnswire.RcodeNoError, Answer: behavior.AnswerTruth,
				Upstream: 1, // calibrated later
			},
		})
	}

	// ---- Incorrect classes (malicious carved out first) -----------------
	incorrCells, err := joinCells(
		[2]uint64{ra.Flag0.Incorr, ra.Flag1.Incorr},
		[2]uint64{aa.Flag0.Incorr, aa.Flag1.Incorr})
	if err != nil {
		return fmt.Errorf("incorrect class: %w", err)
	}
	malCells, err := b.maliciousCells(incorrCells)
	if err != nil {
		return err
	}
	nonmalCells := incorrCells
	for i := range nonmalCells {
		if malCells[i] > nonmalCells[i] {
			return fmt.Errorf("population: malicious cell %d exceeds incorrect cell", i)
		}
		nonmalCells[i] -= malCells[i]
	}
	if err := b.buildMalicious(malCells); err != nil {
		return err
	}
	if err := b.buildNonMalIncorrect(nonmalCells); err != nil {
		return err
	}

	// ---- No-answer class -------------------------------------------------
	noneCells, err := joinCells(
		[2]uint64{ra.Flag0.Without, ra.Flag1.Without},
		[2]uint64{aa.Flag0.Without, aa.Flag1.Without})
	if err != nil {
		return fmt.Errorf("no-answer class: %w", err)
	}
	if err := b.buildNoAnswer(noneCells); err != nil {
		return err
	}

	// ---- Empty-question responders (2018) --------------------------------
	if paperdata.Campaigns[y].R2EmptyQ > 0 {
		if err := b.buildEmptyQuestion(); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) emit(c Cohort) {
	b.cohorts = append(b.cohorts, c)
}

// estimateCohorts bounds the cohort count from the paper tables before any
// streams are built: one cohort per unique payload (feed address, URL/TXT
// name, tail IP) plus slack for the fixed-size classes and run splits at
// cell boundaries. Appends past the estimate still work; the point is that
// in practice they never happen.
func (b *builder) estimateCohorts() int {
	y := b.cfg.Year
	n := 256 // correct / no-answer / empty-question cohorts, split slack
	for _, cat := range paperdata.MalCategories {
		n += int(paperdata.MaliciousTable[y][cat].IPs)
	}
	forms := paperdata.IncorrectFormsByYear[y]
	n += int(forms.URL.Unique) + int(paperdata.ReconciledStrUnique(y))
	_, tailUnique := paperdata.TailIPStats(y)
	return n + int(tailUnique)
}

// joinCells runs the northwest-corner join of one class's RA and AA
// marginals and flattens the 2×2 result in flagCells order.
func joinCells(rows, cols [2]uint64) ([4]uint64, error) {
	m, err := dist.Transport(rows[:], cols[:])
	if err != nil {
		return [4]uint64{}, err
	}
	return [4]uint64{m[0][0], m[0][1], m[1][0], m[1][1]}, nil
}

// maliciousCells computes the malicious (RA, AA) cells: from Table X for
// 2018; apportioned over the incorrect cells for 2013 (the paper gives no
// 2013 flag breakdown).
func (b *builder) maliciousCells(incorrCells [4]uint64) ([4]uint64, error) {
	y := b.cfg.Year
	total := paperdata.MaliciousTotals[y].R2
	if y == paperdata.Y2018 {
		mf := paperdata.MaliciousFlags2018
		cells, err := joinCells([2]uint64{mf.RA0, mf.RA1}, [2]uint64{mf.AA0, mf.AA1})
		if err != nil {
			return [4]uint64{}, fmt.Errorf("malicious class: %w", err)
		}
		return cells, nil
	}
	alloc, err := dist.LargestRemainder(incorrCells[:], total)
	if err != nil {
		return [4]uint64{}, fmt.Errorf("malicious class: %w", err)
	}
	var out [4]uint64
	copy(out[:], alloc)
	return out, nil
}

// maliciousPayloadRuns builds the ordered (address, category) stream of
// Table IX: named addresses carry their §IV-C1 counts; synthetic feed
// addresses share the category remainder near-uniformly.
func (b *builder) maliciousPayloadRuns() ([]run, error) {
	y := b.cfg.Year
	named := paperdata.NamedMalicious[y]
	total := 0
	for _, cat := range paperdata.MalCategories {
		total += int(paperdata.MaliciousTable[y][cat].IPs)
	}
	runs := make([]run, 0, total)
	for _, cat := range paperdata.MalCategories {
		want := paperdata.MaliciousTable[y][cat]
		addrs := b.feed.Addresses(cat)
		if uint64(len(addrs)) != want.IPs {
			return nil, fmt.Errorf("population: feed has %d %s addresses, want %d", len(addrs), cat, want.IPs)
		}
		budget := want.R2
		tail := make([]ipv4.Addr, 0, len(addrs))
		for _, a := range addrs {
			if n, ok := named[a.String()]; ok {
				runs = append(runs, run{n: n, kind: behavior.AnswerFixed, addr: a, cat: cat})
				budget -= n
				b.used[a] = true
				continue
			}
			tail = append(tail, a)
		}
		if len(tail) > 0 {
			counts, err := dist.SpreadUnique(budget, len(tail))
			if err != nil {
				return nil, fmt.Errorf("population: %s spread: %w", cat, err)
			}
			for i, a := range tail {
				runs = append(runs, run{n: counts[i], kind: behavior.AnswerFixed, addr: a, cat: cat})
				b.used[a] = true
			}
		} else if budget != 0 {
			return nil, fmt.Errorf("population: %s has budget %d with no addresses", cat, budget)
		}
	}
	return runs, nil
}

// countryRuns builds the malicious-resolver placement stream.
func countryRuns(y paperdata.Year) []run {
	var runs []run
	for _, g := range paperdata.MaliciousGeo[y] {
		runs = append(runs, run{n: g.R2, country: g.Country})
	}
	return runs
}

// buildMalicious emits the malicious cohorts: fixed malicious answers,
// NoError (§IV-C3), flags per Table X cells, placed per the geo
// distribution.
func (b *builder) buildMalicious(cells [4]uint64) error {
	payload, err := b.maliciousPayloadRuns()
	if err != nil {
		return err
	}
	byCellPayload, err := splitStream(cells[:], payload)
	if err != nil {
		return fmt.Errorf("malicious payload: %w", err)
	}
	byCellCountry, err := splitStream(cells[:], countryRuns(b.cfg.Year))
	if err != nil {
		return fmt.Errorf("malicious countries: %w", err)
	}
	for i := range cells {
		cell := flagCells[i]
		err := zipRuns(byCellPayload[i], byCellCountry[i], func(p, c run, n uint64) {
			b.emit(Cohort{
				Count: n, Class: ClassMalicious,
				Country:  c.country,
				Category: p.cat,
				Profile: behavior.Profile{
					RA: cell.ra, AA: cell.aa,
					Rcode:  dnswire.RcodeNoError,
					Answer: behavior.AnswerFixed, Addr: p.addr,
				},
			})
		})
		if err != nil {
			return fmt.Errorf("malicious cell %d: %w", i, err)
		}
	}
	return nil
}

// nonMalPayloadRuns builds the ordered payload stream of the non-malicious
// incorrect class: benign top-10 IPs, URL form, string form, the 2013 N/A
// form, then the synthetic IP long tail.
func (b *builder) nonMalPayloadRuns() ([]run, error) {
	y := b.cfg.Year
	forms := paperdata.IncorrectFormsByYear[y]
	strUniqueN := int(paperdata.ReconciledStrUnique(y))
	_, tailUnique := paperdata.TailIPStats(y)
	runs := make([]run, 0, 10+int(forms.URL.Unique)+strUniqueN+1+int(tailUnique))
	for _, t := range paperdata.BenignTop10(y) {
		addr := ipv4.MustParseAddr(t.Addr)
		runs = append(runs, run{n: t.Count, kind: behavior.AnswerFixed, addr: addr})
		b.used[addr] = true
	}

	urlNames := syntheticNames("u.dcoin.co", "url%03d.redirect.example", int(forms.URL.Unique))
	urlCounts, err := dist.SpreadUnique(forms.URL.Packets, len(urlNames))
	if err != nil {
		return nil, fmt.Errorf("url form: %w", err)
	}
	for i, name := range urlNames {
		runs = append(runs, run{n: urlCounts[i], kind: behavior.AnswerCNAME, name: name})
	}

	strNamed := []string{"wild", "ff", "OK", "04b400000000"}
	strNames := append(make([]string, 0, strUniqueN), strNamed...)
	for i := len(strNames); i < strUniqueN; i++ {
		strNames = append(strNames, fmt.Sprintf("str%02d", i))
	}
	strNames = strNames[:strUniqueN]
	strCounts, err := dist.SpreadUnique(forms.Str.Packets, len(strNames))
	if err != nil {
		return nil, fmt.Errorf("string form: %w", err)
	}
	for i, name := range strNames {
		runs = append(runs, run{n: strCounts[i], kind: behavior.AnswerTXT, name: name})
	}

	if forms.NA.Packets > 0 {
		runs = append(runs, run{n: forms.NA.Packets, kind: behavior.AnswerMalformed})
	}

	tailPackets, _ := paperdata.TailIPStats(y)
	tailCounts, err := dist.SpreadUnique(tailPackets, int(tailUnique))
	if err != nil {
		return nil, fmt.Errorf("ip tail: %w", err)
	}
	reserved := ipv4.NewReservedBlocklist()
	truthRange := ipv4.MustParseBlock("96.0.0.0/6")
	for _, n := range tailCounts {
		addr := b.syntheticTailAddr(reserved, truthRange)
		runs = append(runs, run{n: n, kind: behavior.AnswerFixed, addr: addr})
	}
	return runs, nil
}

// syntheticTailAddr draws a fresh public address for the incorrect-IP long
// tail: outside reserved space (so it is never a truthful private answer by
// accident), outside the ground-truth range, and unused so Table VII's
// unique counts hold.
func (b *builder) syntheticTailAddr(reserved *ipv4.Blocklist, truthRange ipv4.Block) ipv4.Addr {
	for {
		a := ipv4.Addr(b.rng.Uint32())
		if reserved.Contains(a) || truthRange.Contains(a) || b.used[a] {
			continue
		}
		b.used[a] = true
		return a
	}
}

// syntheticNames produces unique names led by a paper-named example.
func syntheticNames(first, format string, n int) []string {
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	out = append(out, first)
	for i := 1; i < n; i++ {
		out = append(out, fmt.Sprintf(format, i))
	}
	return out
}

// nonZeroWithRcodes returns the reconciled nonzero with-answer rcode
// counts in rcode order.
func nonZeroWithRcodes(y paperdata.Year) []run {
	rc := paperdata.ReconciledRcode(y)
	var runs []run
	for code := 1; code < 10; code++ {
		if rc.With[code] > 0 {
			runs = append(runs, run{n: rc.With[code], rcode: dnswire.Rcode(code)})
		}
	}
	return runs
}

// buildNonMalIncorrect emits the non-malicious incorrect cohorts: payloads
// streamed across the flag cells, nonzero rcodes layered by capacity with
// NoError filling the rest.
func (b *builder) buildNonMalIncorrect(cells [4]uint64) error {
	payload, err := b.nonMalPayloadRuns()
	if err != nil {
		return err
	}
	if got, want := totalRuns(payload), cells[0]+cells[1]+cells[2]+cells[3]; got != want {
		return fmt.Errorf("population: non-mal payload %d != cells %d", got, want)
	}
	byCellPayload, err := splitStream(cells[:], payload)
	if err != nil {
		return fmt.Errorf("non-mal payload: %w", err)
	}

	// rcode allocation: nonzero rcodes spread by capacity, NoError fills.
	capacity := append([]uint64(nil), cells[:]...)
	perCell := make([][]run, 4)
	for _, rz := range nonZeroWithRcodes(b.cfg.Year) {
		alloc, err := fillByCapacity(capacity, rz.n)
		if err != nil {
			return fmt.Errorf("rcode %v: %w", rz.rcode, err)
		}
		for i, n := range alloc {
			if n > 0 {
				perCell[i] = append(perCell[i], run{n: n, rcode: rz.rcode})
			}
		}
	}
	for i, rem := range capacity {
		if rem > 0 {
			// Prepend NoError so the nonzero rcodes land on the tail of the
			// payload stream (the long-tail IPs), keeping the named top-10
			// answers NoError as the paper observes for the malicious ones.
			perCell[i] = append([]run{{n: rem, rcode: dnswire.RcodeNoError}}, perCell[i]...)
		}
	}

	for i := range cells {
		cell := flagCells[i]
		err := zipRuns(byCellPayload[i], perCell[i], func(p, rc run, n uint64) {
			b.emit(Cohort{
				Count: n, Class: ClassIncorrect,
				Profile: behavior.Profile{
					RA: cell.ra, AA: cell.aa,
					Rcode:  rc.rcode,
					Answer: p.kind, Addr: p.addr, Name: p.name,
				},
			})
		})
		if err != nil {
			return fmt.Errorf("incorrect cell %d: %w", i, err)
		}
	}
	return nil
}

// buildNoAnswer emits the no-answer cohorts with Table VI's W/O rcodes
// layered across the flag cells.
func (b *builder) buildNoAnswer(cells [4]uint64) error {
	rc := paperdata.ReconciledRcode(b.cfg.Year)
	capacity := append([]uint64(nil), cells[:]...)
	perCell := make([][]run, 4)
	for code := 0; code < 10; code++ {
		if rc.Without[code] == 0 {
			continue
		}
		alloc, err := fillByCapacity(capacity, rc.Without[code])
		if err != nil {
			return fmt.Errorf("no-answer rcode %d: %w", code, err)
		}
		for i, n := range alloc {
			if n > 0 {
				perCell[i] = append(perCell[i], run{n: n, rcode: dnswire.Rcode(code)})
			}
		}
	}
	for i, rem := range capacity {
		if rem != 0 {
			return fmt.Errorf("no-answer cell %d under-filled by %d", i, rem)
		}
		cell := flagCells[i]
		for _, r := range perCell[i] {
			b.emit(Cohort{
				Count: r.n, Class: ClassNoAnswer,
				Profile: behavior.Profile{
					RA: cell.ra, AA: cell.aa,
					Rcode:  r.rcode,
					Answer: behavior.AnswerNone,
				},
			})
		}
	}
	return nil
}

// buildEmptyQuestion emits the §IV-B4 cohorts (2018): responses with no
// question section.
func (b *builder) buildEmptyQuestion() error {
	e := paperdata.ReconciledEmptyQuestion()

	mk := func(count uint64, ra, aa bool, rcode dnswire.Rcode, kind behavior.AnswerKind, addr ipv4.Addr, name string) {
		if count == 0 {
			return
		}
		b.emit(Cohort{
			Count: count, Class: ClassEmptyQuestion,
			Profile: behavior.Profile{
				RA: ra, AA: aa, Rcode: rcode,
				Answer: kind, Addr: addr, Name: name,
				OmitQuestion: true,
			},
		})
	}

	// The 19 with-answer packets: all RA=1, rcode NoError; one of them has
	// AA=1 (the single with-answer AA1 packet of the section).
	mk(1, true, true, dnswire.RcodeNoError, behavior.AnswerFixed, ipv4.MustParseAddr("192.168.0.1"), "")
	for i := uint64(1); i < e.Private192; i++ {
		mk(1, true, false, dnswire.RcodeNoError, behavior.AnswerFixed,
			ipv4.MustParseAddr("192.168.0.1")+ipv4.Addr(i*256), "")
	}
	mk(e.Private10, true, false, dnswire.RcodeNoError, behavior.AnswerFixed, ipv4.MustParseAddr("10.1.1.1"), "")
	mk(e.BadFormat, true, false, dnswire.RcodeNoError, behavior.AnswerTXT, 0, "0000")
	for i := uint64(0); i < e.Unroutable; i++ {
		mk(1, true, false, dnswire.RcodeNoError, behavior.AnswerFixed,
			ipv4.MustParseAddr("240.10.0.1")+ipv4.Addr(i), "")
	}

	// No-answer packets: the remaining RA1 (165, one with AA=1), then RA0.
	// rcode stream: whatever NoError remains after the with-answer packets,
	// then the error codes.
	var rcodeRuns []run
	if e.Rcodes[0] > e.WithAnswer {
		rcodeRuns = append(rcodeRuns, run{n: e.Rcodes[0] - e.WithAnswer, rcode: dnswire.RcodeNoError})
	}
	for code := 1; code < 10; code++ {
		if e.Rcodes[code] > 0 {
			rcodeRuns = append(rcodeRuns, run{n: e.Rcodes[code], rcode: dnswire.Rcode(code)})
		}
	}
	ra1Rest := e.RA1 - e.WithAnswer
	segs, err := splitStream([]uint64{ra1Rest, e.RA0}, rcodeRuns)
	if err != nil {
		return fmt.Errorf("empty-question rcodes: %w", err)
	}
	aa1Left := true // one no-answer packet carries AA=1
	for si, seg := range segs {
		ra := si == 0
		for _, r := range seg {
			n := r.n
			if aa1Left && ra && n > 0 {
				mk(1, ra, true, r.rcode, behavior.AnswerNone, 0, "")
				n--
				aa1Left = false
			}
			mk(n, ra, false, r.rcode, behavior.AnswerNone, 0, "")
		}
	}
	return nil
}
