package population

import (
	"fmt"
	"math"

	"openresolver/internal/dist"
)

// Mix blends two compiled populations: the result carries round((1-w)·|a|)
// resolvers drawn proportionally from a's cohorts and round(w·|b|) from
// b's. It is the model behind the drift-monitoring extension (paper §V):
// the open-resolver ecosystem between the 2013 and 2018 snapshots is
// approximated by linear interpolation of the two measured populations.
//
// The blend preserves each side's internal structure exactly (flags,
// rcodes, payloads, countries, upstream plans scale together), so every
// analysis table remains well-defined on the mixture.
func Mix(a, b *Population, w float64) (*Population, error) {
	if w < 0 || w > 1 {
		return nil, fmt.Errorf("population: mix weight %v out of [0,1]", w)
	}
	if a.Shift != b.Shift {
		return nil, fmt.Errorf("population: mixing different scales (%d vs %d)", a.Shift, b.Shift)
	}
	out := &Population{
		// The mixture is labeled with the later year's campaign model; the
		// label only affects report headings.
		Year:  b.Year,
		Shift: a.Shift,
		Feed:  b.Feed,
	}
	appendScaled := func(src *Population, weight float64) error {
		if weight == 0 {
			return nil
		}
		counts := make([]uint64, len(src.Cohorts))
		for i, c := range src.Cohorts {
			counts[i] = c.Count
		}
		target := uint64(math.Round(float64(src.ExpectedR2) * weight))
		scaled, err := dist.LargestRemainder(counts, target)
		if err != nil {
			return err
		}
		for i, c := range src.Cohorts {
			if scaled[i] == 0 {
				continue
			}
			c.Count = scaled[i]
			out.Cohorts = append(out.Cohorts, c)
		}
		return nil
	}
	if err := appendScaled(a, 1-w); err != nil {
		return nil, err
	}
	if err := appendScaled(b, w); err != nil {
		return nil, err
	}
	for _, c := range out.Cohorts {
		out.ExpectedR2 += c.Count
		out.ExpectedQ2 += c.Count * uint64(c.Profile.Upstream)
	}
	return out, nil
}
