// Package population is the compiler from the paper's reported marginal
// tables to a concrete resolver population: a list of cohorts, each a
// number of resolvers sharing one behaviour profile (header flags, rcode,
// answer payload, upstream-query behaviour) and, for malicious cohorts, a
// country placement.
//
// Construction is exact and deterministic:
//
//  1. R2 packets are partitioned into answer classes (correct / malicious /
//     non-malicious incorrect / no answer) per Tables III and IX.
//  2. Within each class the RA marginal (Table IV) and the reconciled AA
//     marginal (Table V) are joined by the northwest-corner transportation
//     rule; the 2018 malicious class uses Table X's own marginals.
//  3. rcodes (Table VI) are layered onto the flag cells by a
//     capacity-respecting largest-remainder fill.
//  4. Answer payloads (Table VII forms, Table VIII top-10 multiplicities,
//     Table IX per-category malicious addresses from the threat feed, and
//     apportioned long tails) are streamed across the cells.
//  5. Malicious cohorts are placed into countries per the in-text
//     geolocation distribution.
//  6. Upstream-query multiplicities are calibrated so the authoritative
//     server sees exactly Table II's Q2 count.
//
// At full scale (SampleShift 0) every regenerated table matches the paper
// exactly; at reduced scale the cohort counts are largest-remainder scaled
// so all proportions survive.
package population

import (
	"fmt"

	"openresolver/internal/behavior"
	"openresolver/internal/dist"
	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
	"openresolver/internal/threatintel"
)

// Class labels a cohort's answer class for bookkeeping and tests.
type Class uint8

// Answer classes.
const (
	ClassCorrect Class = iota + 1
	ClassMalicious
	ClassIncorrect // non-malicious incorrect
	ClassNoAnswer
	ClassEmptyQuestion
)

// String returns a short label for the class.
func (c Class) String() string {
	switch c {
	case ClassCorrect:
		return "correct"
	case ClassMalicious:
		return "malicious"
	case ClassIncorrect:
		return "incorrect"
	case ClassNoAnswer:
		return "noanswer"
	case ClassEmptyQuestion:
		return "emptyq"
	default:
		return fmt.Sprintf("class%d", uint8(c))
	}
}

// Cohort is a group of resolvers sharing one exact behaviour.
type Cohort struct {
	Count   uint64
	Class   Class
	Profile behavior.Profile
	// Country is the ISO code malicious cohorts are placed in ("" = any).
	Country string
	// Category is the threat-intel category for malicious cohorts.
	Category paperdata.MalCategory
}

// Config parameterizes population construction.
type Config struct {
	Year paperdata.Year
	// SampleShift scales the population to 1/2^SampleShift, matching the
	// scanner's systematic sample. 0 reproduces the paper's full counts.
	SampleShift uint8
	// Seed drives synthetic address/name generation.
	Seed int64
	// Feed is the threat landscape; built from (Year, Seed) when nil.
	Feed *threatintel.Feed
}

// Population is the compiled resolver population of one campaign.
type Population struct {
	Year    paperdata.Year
	Shift   uint8
	Cohorts []Cohort
	Feed    *threatintel.Feed

	// ExpectedR2 is the total resolver count (= R2 packets, one response
	// per probed responder).
	ExpectedR2 uint64
	// ExpectedQ2 is the total of upstream authoritative queries the
	// population will generate.
	ExpectedQ2 uint64
}

// flagCell indexes the four (RA, AA) combinations in deterministic order.
var flagCells = [4]struct{ ra, aa bool }{
	{false, false}, {false, true}, {true, false}, {true, true},
}

// Build compiles the population.
func Build(cfg Config) (*Population, error) {
	if _, ok := paperdata.Campaigns[cfg.Year]; !ok {
		return nil, fmt.Errorf("population: unknown year %d", cfg.Year)
	}
	feed := cfg.Feed
	if feed == nil {
		feed = threatintel.NewFeed(cfg.Year, cfg.Seed)
	}
	b := &builder{cfg: cfg, feed: feed}
	if err := b.build(); err != nil {
		return nil, err
	}

	pop := &Population{
		Year:    cfg.Year,
		Shift:   cfg.SampleShift,
		Cohorts: b.cohorts,
		Feed:    feed,
	}
	if cfg.SampleShift > 0 {
		if err := pop.scaleDown(cfg.SampleShift); err != nil {
			return nil, err
		}
	}
	if err := pop.calibrateUpstream(); err != nil {
		return nil, err
	}
	for _, c := range pop.Cohorts {
		pop.ExpectedR2 += c.Count
		pop.ExpectedQ2 += c.Count * uint64(c.Profile.Upstream)
	}
	return pop, nil
}

// scaleDown applies hierarchical largest-remainder scaling to the cohort
// counts: groups (class × category × answer form × country) are scaled
// against each other first, then cohorts within each group. Flat
// apportionment over tens of thousands of heterogeneous cohorts would
// systematically inflate classes made of many small cohorts (their
// fractional remainders outrank the long tail's), distorting the class
// proportions every table reports; the group level pins those proportions
// to rounding error.
func (p *Population) scaleDown(shift uint8) error {
	type groupKey struct {
		class    Class
		category paperdata.MalCategory
		answer   behavior.AnswerKind
		country  string
	}
	keyOf := func(c Cohort) groupKey {
		return groupKey{c.Class, c.Category, c.Profile.Answer, c.Country}
	}
	var order []groupKey
	groups := make(map[groupKey][]int)
	totals := make(map[groupKey]uint64)
	for i, c := range p.Cohorts {
		k := keyOf(c)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
		totals[k] += c.Count
	}

	groupCounts := make([]uint64, len(order))
	for i, k := range order {
		groupCounts[i] = totals[k]
	}
	groupScaled, err := dist.ScaleDown(groupCounts, shift)
	if err != nil {
		return fmt.Errorf("population: scale down groups: %w", err)
	}

	out := make([]Cohort, 0, len(p.Cohorts)>>shift+16)
	for gi, k := range order {
		if groupScaled[gi] == 0 {
			continue
		}
		idxs := groups[k]
		counts := make([]uint64, len(idxs))
		for j, i := range idxs {
			counts[j] = p.Cohorts[i].Count
		}
		scaled, err := dist.LargestRemainder(counts, groupScaled[gi])
		if err != nil {
			return fmt.Errorf("population: scale down group %v: %w", k, err)
		}
		for j, i := range idxs {
			if scaled[j] == 0 {
				continue
			}
			c := p.Cohorts[i]
			c.Count = scaled[j]
			out = append(out, c)
		}
	}
	p.Cohorts = out
	return nil
}

// resolvingRcodes are the no-answer rcodes whose senders plausibly
// attempted resolution; together with the correct class they carry the Q2
// budget (§ Table II calibration, see DESIGN.md).
func resolvingNoAnswer(rc dnswire.Rcode) bool {
	switch rc {
	case dnswire.RcodeNoError, dnswire.RcodeServFail, dnswire.RcodeNXDomain:
		return true
	}
	return false
}

// calibrateUpstream distributes the campaign's Q2 budget over the cohorts
// that resolve: every correct-class cohort and the no-answer cohorts with
// NoError/ServFail/NXDomain rcodes. Each eligible resolver gets the base
// multiplicity; the remainder get one extra (cohorts are split as needed).
func (p *Population) calibrateUpstream() error {
	target := paperdata.Campaigns[p.Year].Q2R1
	if p.Shift > 0 {
		half := uint64(1) << p.Shift >> 1
		target = (target + half) >> p.Shift
	}
	var eligible uint64
	for _, c := range p.Cohorts {
		if cohortResolves(c) {
			eligible += c.Count
		}
	}
	if eligible == 0 {
		if target != 0 {
			return fmt.Errorf("population: Q2 target %d with no resolving cohorts", target)
		}
		return nil
	}
	base := target / eligible
	extra := target - base*eligible // this many resolvers get base+1

	out := make([]Cohort, 0, len(p.Cohorts)+8)
	for _, c := range p.Cohorts {
		if !cohortResolves(c) {
			out = append(out, c)
			continue
		}
		if extra >= c.Count {
			c.Profile.Upstream = int(base) + 1
			extra -= c.Count
			out = append(out, c)
			continue
		}
		if extra > 0 {
			head := c
			head.Count = extra
			head.Profile.Upstream = int(base) + 1
			out = append(out, head)
			c.Count -= extra
			extra = 0
		}
		c.Profile.Upstream = int(base)
		out = append(out, c)
	}
	p.Cohorts = out
	// base can be 0 only if Q2 < eligible, which never happens for the
	// paper's campaigns; honest cohorts with Upstream 0 would answer from
	// nothing, so reject the configuration instead of mis-simulating.
	if base == 0 && extra == 0 {
		for _, c := range p.Cohorts {
			if c.Class == ClassCorrect && c.Profile.Upstream == 0 {
				return fmt.Errorf("population: Q2 budget %d too small for %d resolving cohort members", target, eligible)
			}
		}
	}
	return nil
}

func cohortResolves(c Cohort) bool {
	switch c.Class {
	case ClassCorrect:
		return true
	case ClassNoAnswer:
		return resolvingNoAnswer(c.Profile.Rcode)
	}
	return false
}

// Stats aggregates cohort counts for tests and reports.
type Stats struct {
	Total      uint64
	ByClass    map[Class]uint64
	RA1        uint64
	AA1        uint64
	WithAnswer uint64
}

// Stats computes aggregate counters over the cohorts.
func (p *Population) Stats() Stats {
	s := Stats{ByClass: make(map[Class]uint64)}
	for _, c := range p.Cohorts {
		s.Total += c.Count
		s.ByClass[c.Class] += c.Count
		if c.Profile.RA {
			s.RA1 += c.Count
		}
		if c.Profile.AA {
			s.AA1 += c.Count
		}
		switch c.Profile.Answer {
		case behavior.AnswerTruth, behavior.AnswerFixed, behavior.AnswerCNAME,
			behavior.AnswerTXT, behavior.AnswerMalformed:
			s.WithAnswer += c.Count
		}
	}
	return s
}

// run is one homogeneous stretch of an allocation stream.
type run struct {
	n uint64
	// payload fields (zero when the stream carries rcodes or countries).
	kind behavior.AnswerKind
	addr ipv4.Addr
	name string
	cat  paperdata.MalCategory
	// rcode stream field.
	rcode dnswire.Rcode
	// country stream field.
	country string
}

// splitStream partitions an ordered run stream into len(cells) consecutive
// segments whose sizes are the cell capacities, splitting runs at
// boundaries. The total run length must equal the total capacity.
func splitStream(cells []uint64, runs []run) ([][]run, error) {
	out := make([][]run, len(cells))
	// All segments share one exactly-sized backing array: every inner-loop
	// iteration either consumes a run or finishes a cell, so the segment
	// count is bounded by len(runs)+len(cells) and per-cell append growth
	// (quadratic bytes over four cells of a long stream) never happens.
	flat := make([]run, 0, len(runs)+len(cells))
	ri := 0
	var used uint64 // consumed from runs[ri]
	for ci, capacity := range cells {
		need := capacity
		cellStart := len(flat)
		for need > 0 {
			if ri >= len(runs) {
				return nil, fmt.Errorf("population: stream underflow at cell %d (need %d more)", ci, need)
			}
			r := runs[ri]
			avail := r.n - used
			take := avail
			if take > need {
				take = need
			}
			seg := r
			seg.n = take
			flat = append(flat, seg)
			need -= take
			used += take
			if used == r.n {
				ri++
				used = 0
			}
		}
		out[ci] = flat[cellStart:len(flat):len(flat)]
	}
	if ri != len(runs) || used != 0 {
		return nil, fmt.Errorf("population: stream overflow (%d runs unconsumed)", len(runs)-ri)
	}
	return out, nil
}

// zipRuns merges two run streams of equal total length into cohortSpecs:
// for every overlapping stretch the fields of both runs apply.
func zipRuns(a, b []run, apply func(a, b run, n uint64)) error {
	ai, bi := 0, 0
	var aUsed, bUsed uint64
	for ai < len(a) && bi < len(b) {
		ra, rb := a[ai], b[bi]
		availA := ra.n - aUsed
		availB := rb.n - bUsed
		take := availA
		if availB < take {
			take = availB
		}
		apply(ra, rb, take)
		aUsed += take
		bUsed += take
		if aUsed == ra.n {
			ai++
			aUsed = 0
		}
		if bUsed == rb.n {
			bi++
			bUsed = 0
		}
	}
	if ai != len(a) || bi != len(b) {
		return fmt.Errorf("population: zip length mismatch")
	}
	return nil
}

// totalRuns sums a run stream's length.
func totalRuns(runs []run) uint64 {
	var n uint64
	for _, r := range runs {
		n += r.n
	}
	return n
}

// fillByCapacity distributes amount across cells with the given remaining
// capacities, proportionally (largest remainder), never exceeding any
// capacity; overflow from clamping is pushed to cells with headroom in
// index order. The capacities are decremented in place.
func fillByCapacity(capacity []uint64, amount uint64) ([]uint64, error) {
	var totalCap uint64
	for _, c := range capacity {
		totalCap += c
	}
	if amount > totalCap {
		return nil, fmt.Errorf("population: fill amount %d exceeds capacity %d", amount, totalCap)
	}
	if amount == 0 {
		return make([]uint64, len(capacity)), nil
	}
	alloc, err := dist.LargestRemainder(capacity, amount)
	if err != nil {
		return nil, err
	}
	// Clamp and redistribute (LR can exceed a cell by rounding).
	var overflow uint64
	for i := range alloc {
		if alloc[i] > capacity[i] {
			overflow += alloc[i] - capacity[i]
			alloc[i] = capacity[i]
		}
	}
	for i := range alloc {
		if overflow == 0 {
			break
		}
		if room := capacity[i] - alloc[i]; room > 0 {
			take := room
			if take > overflow {
				take = overflow
			}
			alloc[i] += take
			overflow -= take
		}
	}
	if overflow != 0 {
		return nil, fmt.Errorf("population: fill redistribution failed")
	}
	for i := range capacity {
		capacity[i] -= alloc[i]
	}
	return alloc, nil
}
