package population

import (
	"testing"

	"openresolver/internal/geo"
	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
)

// serialAssignments replays the whole population through one assigner,
// returning every (country, address) draw in order.
func serialAssignments(t *testing.T, a *Assigner, pop *Population) []ipv4.Addr {
	t.Helper()
	var out []ipv4.Addr
	for _, c := range pop.Cohorts {
		for i := uint64(0); i < c.Count; i++ {
			addr, err := a.Next(c.Country)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, addr)
		}
	}
	return out
}

func TestForkAdvanceMatchesSerialWalk(t *testing.T) {
	pop, u := buildScaled(t, paperdata.Y2018, 10)
	reg := geo.DefaultRegistry()
	base, err := NewAssigner(u, reg, pop)
	if err != nil {
		t.Fatal(err)
	}
	want := serialAssignments(t, base, pop)

	// Split the population at several global draw boundaries; a fork
	// advanced past the prefix must produce the suffix exactly.
	for _, split := range []int{0, 1, len(want) / 3, len(want) / 2, len(want) - 1} {
		fresh, err := NewAssigner(u, reg, pop)
		if err != nil {
			t.Fatal(err)
		}
		fork := fresh.Fork()
		// Count the prefix's draws per kind by replaying cohort order.
		var unpinned uint64
		byCountry := map[string]uint64{}
		g := 0
		for _, c := range pop.Cohorts {
			for i := uint64(0); i < c.Count && g < split; i++ {
				if c.Country == "" {
					unpinned++
				} else {
					byCountry[c.Country]++
				}
				g++
			}
			if g == split {
				break
			}
		}
		for country, n := range byCountry {
			if err := fork.AdvanceCountry(country, n); err != nil {
				t.Fatal(err)
			}
		}
		if err := fork.AdvanceUnpinned(unpinned); err != nil {
			t.Fatal(err)
		}
		// The fork now reproduces the serial suffix.
		g = 0
		for _, c := range pop.Cohorts {
			for i := uint64(0); i < c.Count; i++ {
				if g >= split {
					addr, err := fork.Next(c.Country)
					if err != nil {
						t.Fatal(err)
					}
					if addr != want[g] {
						t.Fatalf("split %d: draw %d = %v, serial %v", split, g, addr, want[g])
					}
				}
				g++
			}
		}
	}
}

func TestForkIsolatesCursors(t *testing.T) {
	pop, u := buildScaled(t, paperdata.Y2018, 12)
	base, err := NewAssigner(u, geo.DefaultRegistry(), pop)
	if err != nil {
		t.Fatal(err)
	}
	fork := base.Fork()
	a1, err := base.Next("")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := fork.Next("")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("fork's first draw %v differs from parent's %v", a2, a1)
	}
}

func TestAdvanceCountryBounds(t *testing.T) {
	pop, u := buildScaled(t, paperdata.Y2018, 12)
	a, err := NewAssigner(u, geo.DefaultRegistry(), pop)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AdvanceCountry("US", 1<<40); err == nil {
		t.Error("advancing past the reservation succeeded")
	}
}
