package population

import (
	"fmt"

	"openresolver/internal/geo"
	"openresolver/internal/ipv4"
	"openresolver/internal/scan"
)

// Assigner hands out source addresses for resolvers, guaranteeing that
// every assigned address lies in the scan universe (so the prober will
// visit it) and is unique across the whole population.
//
// Country-pinned cohorts (the malicious resolvers with a geolocation
// target) draw addresses from the geo registry's blocks, walking each
// block's coset members in address order. Those addresses are reserved up
// front, so the unpinned cohorts — assigned through a stride walk over the
// universe's permutation positions, which is itself collision-free — can
// simply skip them.
//
// Assignment is deterministic in (universe, registry, population order), so
// the synthetic and simulation modes agree without storing millions of
// addresses: only the country reservations (tens of thousands at full
// scale) are materialized.
type Assigner struct {
	u   *scan.Universe
	reg *geo.Registry

	// avoid holds infrastructure plus all country-reserved addresses; the
	// stride walk skips them. The walk itself is a bijection over
	// universe positions, so unpinned assignments never self-collide.
	avoid map[ipv4.Addr]bool

	pos    uint64
	stride uint64
	issued uint64

	// reserved holds each country's pre-generated address list and a
	// cursor into it.
	reserved map[string][]ipv4.Addr
	taken    map[string]int
}

// NewAssigner builds an assigner for pop's cohorts. infra lists addresses
// that must never be assigned (prober, root, TLD, authoritative server).
func NewAssigner(u *scan.Universe, reg *geo.Registry, pop *Population, infra ...ipv4.Addr) (*Assigner, error) {
	a := &Assigner{
		u:     u,
		reg:   reg,
		avoid: make(map[ipv4.Addr]bool, len(infra)),
		// A large odd stride decorrelates assignment order from probe
		// order while remaining a bijection over the 2^k index ring.
		stride:   2654435761,
		reserved: make(map[string][]ipv4.Addr),
		taken:    make(map[string]int),
	}
	for _, ip := range infra {
		a.avoid[ip] = true
	}
	// Reserve country-pinned addresses up front, in cohort order.
	need := make(map[string]uint64)
	var order []string
	for _, c := range pop.Cohorts {
		if c.Country == "" {
			continue
		}
		if _, seen := need[c.Country]; !seen {
			order = append(order, c.Country)
		}
		need[c.Country] += c.Count
	}
	for _, country := range order {
		addrs, err := a.reserveCountry(country, need[country])
		if err != nil {
			return nil, err
		}
		a.reserved[country] = addrs
	}
	return a, nil
}

// reserveCountry walks the country's blocks collecting n coset members.
func (a *Assigner) reserveCountry(country string, n uint64) ([]ipv4.Addr, error) {
	blocks := a.reg.CountryBlocks(country)
	if len(blocks) == 0 {
		return nil, fmt.Errorf("population: no geo allocation for %q", country)
	}
	step := uint64(1) << a.u.SampleShift()
	residue := uint64(residueOf(a.u))
	out := make([]ipv4.Addr, 0, n)
	for _, alloc := range blocks {
		b := alloc.Block
		lo := uint64(b.First())
		first := lo + (residue-lo)%step
		for cur := first; cur <= uint64(b.Last()); cur += step {
			addr := ipv4.Addr(cur)
			if a.avoid[addr] || !a.u.Contains(addr) {
				continue
			}
			a.avoid[addr] = true
			out = append(out, addr)
			if uint64(len(out)) == n {
				return out, nil
			}
		}
	}
	return nil, fmt.Errorf("population: country %q has only %d/%d coset addresses", country, len(out), n)
}

// Fork returns an assigner with independent cursors over the same
// assignment sequence. The universe, registry, avoid set and per-country
// reservations are shared: NewAssigner is the only writer of those, so
// forks may draw addresses concurrently with each other and the parent as
// long as each assigner is used by a single goroutine.
//
// Combined with Advance*, a fork lets a shard worker start exactly where
// the serial walk would be after the preceding shards' draws, without
// materializing any addresses.
func (a *Assigner) Fork() *Assigner {
	taken := make(map[string]int, len(a.taken))
	for k, v := range a.taken {
		taken[k] = v
	}
	return &Assigner{
		u: a.u, reg: a.reg, avoid: a.avoid,
		pos: a.pos, stride: a.stride, issued: a.issued,
		reserved: a.reserved, taken: taken,
	}
}

// AdvanceUnpinned consumes and discards the next n unconstrained
// assignments, leaving the cursor exactly where n successful Next("")
// calls would. The walk still has to test each visited position against
// the avoid set, but skipping is several orders of magnitude cheaper than
// the per-probe encode/decode work it lets a shard worker bypass.
func (a *Assigner) AdvanceUnpinned(n uint64) error {
	for i := uint64(0); i < n; i++ {
		if _, err := a.Next(""); err != nil {
			return err
		}
	}
	return nil
}

// AdvanceCountry consumes and discards the next n reserved addresses of
// country. Country reservations are materialized lists, so this is O(1).
func (a *Assigner) AdvanceCountry(country string, n uint64) error {
	list := a.reserved[country]
	i := a.taken[country]
	if uint64(len(list)-i) < n {
		return fmt.Errorf("population: country %q reservation exhausted", country)
	}
	a.taken[country] = i + int(n)
	return nil
}

// Next returns the next source address for a resolver of the given cohort
// country ("" = unconstrained).
func (a *Assigner) Next(country string) (ipv4.Addr, error) {
	if country != "" {
		list := a.reserved[country]
		i := a.taken[country]
		if i >= len(list) {
			return 0, fmt.Errorf("population: country %q reservation exhausted", country)
		}
		a.taken[country] = i + 1
		return list[i], nil
	}
	n := a.u.Indexes()
	if a.issued >= n {
		return 0, fmt.Errorf("population: universe exhausted")
	}
	for a.issued < n {
		idx := a.pos % n
		a.pos += a.stride
		a.issued++
		addr, ok := a.u.At(idx)
		if !ok || a.avoid[addr] {
			continue
		}
		return addr, nil
	}
	return 0, fmt.Errorf("population: universe exhausted")
}

// residueOf recovers the universe's coset residue from any member address.
func residueOf(u *scan.Universe) uint32 {
	addr, _ := u.At(0)
	return uint32(addr) & (1<<u.SampleShift() - 1)
}
