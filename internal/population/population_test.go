package population

import (
	"testing"

	"openresolver/internal/behavior"
	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
)

func buildFull(t *testing.T, y paperdata.Year) *Population {
	t.Helper()
	pop, err := Build(Config{Year: y, Seed: 11})
	if err != nil {
		t.Fatalf("Build(%d): %v", y, err)
	}
	return pop
}

func TestFullScaleTotals(t *testing.T) {
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		pop := buildFull(t, y)
		if pop.ExpectedR2 != paperdata.Campaigns[y].R2 {
			t.Errorf("%d: R2 = %d, want %d", y, pop.ExpectedR2, paperdata.Campaigns[y].R2)
		}
		if pop.ExpectedQ2 != paperdata.Campaigns[y].Q2R1 {
			t.Errorf("%d: Q2 = %d, want %d", y, pop.ExpectedQ2, paperdata.Campaigns[y].Q2R1)
		}
	}
}

func TestFullScaleTableIII(t *testing.T) {
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		pop := buildFull(t, y)
		s := pop.Stats()
		c := paperdata.CorrectnessByYear[y]
		if got := s.ByClass[ClassCorrect]; got != c.Correct {
			t.Errorf("%d: correct = %d, want %d", y, got, c.Correct)
		}
		if got := s.ByClass[ClassMalicious] + s.ByClass[ClassIncorrect]; got != c.Incorr {
			t.Errorf("%d: incorrect = %d, want %d", y, got, c.Incorr)
		}
		if got := s.ByClass[ClassNoAnswer]; got != c.Without {
			t.Errorf("%d: no-answer = %d, want %d", y, got, c.Without)
		}
		if got := s.ByClass[ClassEmptyQuestion]; got != paperdata.Campaigns[y].R2EmptyQ {
			t.Errorf("%d: empty-question = %d, want %d", y, got, paperdata.Campaigns[y].R2EmptyQ)
		}
	}
}

// marginals recomputes Table IV/V-style marginals from cohorts, excluding
// empty-question cohorts (the paper's tables exclude them too).
func marginals(pop *Population) (ra, aa map[bool]paperdata.FlagRow) {
	ra = map[bool]paperdata.FlagRow{}
	aa = map[bool]paperdata.FlagRow{}
	upd := func(m map[bool]paperdata.FlagRow, key bool, c Cohort) {
		row := m[key]
		switch c.Class {
		case ClassCorrect:
			row.Correct += c.Count
		case ClassMalicious, ClassIncorrect:
			row.Incorr += c.Count
		case ClassNoAnswer:
			row.Without += c.Count
		}
		m[key] = row
	}
	for _, c := range pop.Cohorts {
		if c.Class == ClassEmptyQuestion {
			continue
		}
		upd(ra, c.Profile.RA, c)
		upd(aa, c.Profile.AA, c)
	}
	return ra, aa
}

func TestFullScaleTableIVandV(t *testing.T) {
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		pop := buildFull(t, y)
		ra, aa := marginals(pop)
		wantRA := paperdata.RATable[y]
		if ra[false] != wantRA.Flag0 || ra[true] != wantRA.Flag1 {
			t.Errorf("%d RA: got %+v/%+v, want %+v/%+v",
				y, ra[false], ra[true], wantRA.Flag0, wantRA.Flag1)
		}
		wantAA := paperdata.ReconciledAA(y)
		if aa[false] != wantAA.Flag0 || aa[true] != wantAA.Flag1 {
			t.Errorf("%d AA: got %+v/%+v, want %+v/%+v",
				y, aa[false], aa[true], wantAA.Flag0, wantAA.Flag1)
		}
	}
}

func TestFullScaleTableVI(t *testing.T) {
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		pop := buildFull(t, y)
		var with, without [10]uint64
		for _, c := range pop.Cohorts {
			if c.Class == ClassEmptyQuestion {
				continue
			}
			if c.Profile.Answer == behavior.AnswerNone {
				without[c.Profile.Rcode] += c.Count
			} else {
				with[c.Profile.Rcode] += c.Count
			}
		}
		want := paperdata.ReconciledRcode(y)
		if with != want.With {
			t.Errorf("%d W rcodes: got %v, want %v", y, with, want.With)
		}
		if without != want.Without {
			t.Errorf("%d W/O rcodes: got %v, want %v", y, without, want.Without)
		}
	}
}

func TestFullScaleTableVIIForms(t *testing.T) {
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		pop := buildFull(t, y)
		var ipPkts, urlPkts, strPkts, naPkts uint64
		ipUnique := map[ipv4.Addr]bool{}
		urlUnique := map[string]bool{}
		strUnique := map[string]bool{}
		for _, c := range pop.Cohorts {
			if c.Class != ClassMalicious && c.Class != ClassIncorrect {
				continue
			}
			switch c.Profile.Answer {
			case behavior.AnswerFixed:
				ipPkts += c.Count
				ipUnique[c.Profile.Addr] = true
			case behavior.AnswerCNAME:
				urlPkts += c.Count
				urlUnique[c.Profile.Name] = true
			case behavior.AnswerTXT:
				strPkts += c.Count
				strUnique[c.Profile.Name] = true
			case behavior.AnswerMalformed:
				naPkts += c.Count
			}
		}
		want := paperdata.IncorrectFormsByYear[y]
		if ipPkts != want.IP.Packets || uint64(len(ipUnique)) != want.IP.Unique {
			t.Errorf("%d IP form: %d/%d unique %d/%d",
				y, ipPkts, want.IP.Packets, len(ipUnique), want.IP.Unique)
		}
		if urlPkts != want.URL.Packets || uint64(len(urlUnique)) != want.URL.Unique {
			t.Errorf("%d URL form: %d/%d unique %d/%d",
				y, urlPkts, want.URL.Packets, len(urlUnique), want.URL.Unique)
		}
		if strPkts != want.Str.Packets || uint64(len(strUnique)) != paperdata.ReconciledStrUnique(y) {
			t.Errorf("%d string form: %d/%d unique %d/%d",
				y, strPkts, want.Str.Packets, len(strUnique), paperdata.ReconciledStrUnique(y))
		}
		if naPkts != want.NA.Packets {
			t.Errorf("%d N/A form: %d/%d", y, naPkts, want.NA.Packets)
		}
	}
}

func TestFullScaleTop10(t *testing.T) {
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		pop := buildFull(t, y)
		counts := map[ipv4.Addr]uint64{}
		for _, c := range pop.Cohorts {
			if c.Class != ClassMalicious && c.Class != ClassIncorrect {
				continue
			}
			if c.Profile.Answer == behavior.AnswerFixed {
				counts[c.Profile.Addr] += c.Count
			}
		}
		for _, want := range paperdata.Top10[y] {
			addr := ipv4.MustParseAddr(want.Addr)
			if got := counts[addr]; got != want.Count {
				t.Errorf("%d top-10 %s: %d, want %d", y, want.Addr, got, want.Count)
			}
		}
	}
}

func TestFullScaleTableIX(t *testing.T) {
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		pop := buildFull(t, y)
		pkts := map[paperdata.MalCategory]uint64{}
		uniq := map[paperdata.MalCategory]map[ipv4.Addr]bool{}
		for _, c := range pop.Cohorts {
			if c.Class != ClassMalicious {
				continue
			}
			pkts[c.Category] += c.Count
			if uniq[c.Category] == nil {
				uniq[c.Category] = map[ipv4.Addr]bool{}
			}
			uniq[c.Category][c.Profile.Addr] = true
		}
		for cat, want := range paperdata.MaliciousTable[y] {
			if pkts[cat] != want.R2 {
				t.Errorf("%d %s R2 = %d, want %d", y, cat, pkts[cat], want.R2)
			}
			if uint64(len(uniq[cat])) != want.IPs {
				t.Errorf("%d %s unique = %d, want %d", y, cat, len(uniq[cat]), want.IPs)
			}
		}
	}
}

func TestFullScaleTableX(t *testing.T) {
	pop := buildFull(t, paperdata.Y2018)
	var m paperdata.MalFlags
	for _, c := range pop.Cohorts {
		if c.Class != ClassMalicious {
			continue
		}
		if c.Profile.RA {
			m.RA1 += c.Count
		} else {
			m.RA0 += c.Count
		}
		if c.Profile.AA {
			m.AA1 += c.Count
		} else {
			m.AA0 += c.Count
		}
		if c.Profile.Rcode != dnswire.RcodeNoError {
			t.Errorf("malicious cohort with rcode %v", c.Profile.Rcode)
		}
	}
	if m != paperdata.MaliciousFlags2018 {
		t.Errorf("malicious flags = %+v, want %+v", m, paperdata.MaliciousFlags2018)
	}
}

func TestFullScaleGeo(t *testing.T) {
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		pop := buildFull(t, y)
		got := map[string]uint64{}
		for _, c := range pop.Cohorts {
			if c.Class == ClassMalicious {
				got[c.Country] += c.Count
			}
		}
		for _, g := range paperdata.MaliciousGeo[y] {
			if got[g.Country] != g.R2 {
				t.Errorf("%d %s: %d, want %d", y, g.Country, got[g.Country], g.R2)
			}
		}
		if got[""] != 0 {
			t.Errorf("%d: %d malicious resolvers without a country", y, got[""])
		}
	}
}

func TestEmptyQuestionCohorts(t *testing.T) {
	pop := buildFull(t, paperdata.Y2018)
	e := paperdata.ReconciledEmptyQuestion()
	var total, withAns, ra1, aa1 uint64
	var rcodes [10]uint64
	for _, c := range pop.Cohorts {
		if c.Class != ClassEmptyQuestion {
			continue
		}
		if !c.Profile.OmitQuestion {
			t.Error("empty-question cohort without OmitQuestion")
		}
		total += c.Count
		if c.Profile.Answer != behavior.AnswerNone {
			withAns += c.Count
		}
		if c.Profile.RA {
			ra1 += c.Count
		}
		if c.Profile.AA {
			aa1 += c.Count
		}
		rcodes[c.Profile.Rcode] += c.Count
	}
	if total != e.Total || withAns != e.WithAnswer || ra1 != e.RA1 || aa1 != e.AA1 {
		t.Errorf("empty-question: total=%d withAns=%d ra1=%d aa1=%d", total, withAns, ra1, aa1)
	}
	if rcodes != e.Rcodes {
		t.Errorf("empty-question rcodes = %v, want %v", rcodes, e.Rcodes)
	}
}

func TestUpstreamCalibration(t *testing.T) {
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		pop := buildFull(t, y)
		for _, c := range pop.Cohorts {
			resolving := cohortResolves(c)
			if resolving && c.Profile.Upstream < 1 {
				t.Errorf("%d: resolving cohort %s with upstream %d", y, c.Class, c.Profile.Upstream)
			}
			if !resolving && c.Profile.Upstream != 0 {
				t.Errorf("%d: non-resolving cohort %s with upstream %d", y, c.Class, c.Profile.Upstream)
			}
			if c.Class == ClassCorrect && c.Profile.Answer != behavior.AnswerTruth {
				t.Errorf("correct cohort with answer kind %v", c.Profile.Answer)
			}
		}
	}
}

func TestScaledPopulation(t *testing.T) {
	const shift = 10
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		pop, err := Build(Config{Year: y, SampleShift: shift, Seed: 5})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		wantR2 := (paperdata.Campaigns[y].R2 + 512) >> shift
		if pop.ExpectedR2 != wantR2 {
			t.Errorf("%d: scaled R2 = %d, want %d", y, pop.ExpectedR2, wantR2)
		}
		wantQ2 := (paperdata.Campaigns[y].Q2R1 + 512) >> shift
		if pop.ExpectedQ2 != wantQ2 {
			t.Errorf("%d: scaled Q2 = %d, want %d", y, pop.ExpectedQ2, wantQ2)
		}
		// Proportions must hold within rounding: correct fraction.
		s := pop.Stats()
		fullCorrect := float64(paperdata.CorrectnessByYear[y].Correct) / float64(paperdata.CorrectnessByYear[y].R2)
		gotCorrect := float64(s.ByClass[ClassCorrect]) / float64(s.Total)
		if diff := gotCorrect - fullCorrect; diff < -0.01 || diff > 0.01 {
			t.Errorf("%d: scaled correct fraction %.4f vs %.4f", y, gotCorrect, fullCorrect)
		}
		for _, c := range pop.Cohorts {
			if c.Count == 0 {
				t.Error("zero-count cohort survived scaling")
			}
		}

		// Hierarchical scaling must preserve the small classes'
		// proportions too: the malicious share may deviate from its exact
		// scaled target only by rounding of the category×cell×country
		// groups, not by the long tail's remainder pressure.
		var mal uint64
		for _, c := range pop.Cohorts {
			if c.Class == ClassMalicious {
				mal += c.Count
			}
		}
		wantMal := (paperdata.MaliciousTotals[y].R2 + 512) >> shift
		if diff := int64(mal) - int64(wantMal); diff < -3 || diff > 3 {
			t.Errorf("%d: scaled malicious = %d, want ≈%d", y, mal, wantMal)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(Config{Year: paperdata.Y2018, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Config{Year: paperdata.Y2018, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cohorts) != len(b.Cohorts) {
		t.Fatalf("cohort counts differ: %d vs %d", len(a.Cohorts), len(b.Cohorts))
	}
	for i := range a.Cohorts {
		if a.Cohorts[i] != b.Cohorts[i] {
			t.Fatalf("cohort %d differs", i)
		}
	}
}

func TestBuildRejectsUnknownYear(t *testing.T) {
	if _, err := Build(Config{Year: 1999}); err == nil {
		t.Error("unknown year accepted")
	}
}

func TestIncorrectAddrsAvoidTruthRange(t *testing.T) {
	truthRange := ipv4.MustParseBlock("96.0.0.0/6")
	pop := buildFull(t, paperdata.Y2018)
	for _, c := range pop.Cohorts {
		if c.Profile.Answer == behavior.AnswerFixed && c.Class != ClassEmptyQuestion {
			if truthRange.Contains(c.Profile.Addr) {
				t.Fatalf("incorrect answer %v lies in the ground-truth range", c.Profile.Addr)
			}
		}
	}
}

func BenchmarkBuildFull2018(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build(Config{Year: paperdata.Y2018, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildScaled2018(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build(Config{Year: paperdata.Y2018, SampleShift: 10, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
