package dnswire

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// TestAppendQueryMatchesNewQuery pins the zero-alloc query encoder to the
// allocating reference path: for any (id, name, type), AppendQuery must
// produce exactly the bytes of NewQuery(...).Pack(), and fail exactly when
// it fails.
func TestAppendQueryMatchesNewQuery(t *testing.T) {
	names := []string{
		"example.com",
		"x0.c1.ucfsealresearch.net",
		"x4999.c3.ucfsealresearch.net",
		".",
		"",
		"a.b.c.d.e.f",
		"single",
		strings.Repeat("a", 63) + ".net", // max label: valid
		strings.Repeat("a", 64) + ".net", // label too long: error
		strings.Repeat("abcdefgh.", 28) + "toolong.", // >255 octets: error
	}
	for _, name := range names {
		for _, typ := range []Type{TypeA, TypeTXT} {
			want, wantErr := NewQuery(0x1234, name, typ).Pack()
			got, gotErr := AppendQuery(nil, 0x1234, []byte(name), typ)
			if (wantErr == nil) != (gotErr == nil) {
				t.Errorf("%q: Pack err %v, AppendQuery err %v", name, wantErr, gotErr)
				continue
			}
			if wantErr != nil {
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%q type %v: wire mismatch\n got %x\nwant %x", name, typ, got, want)
			}
		}
	}

	// Appending onto a non-empty buffer must preserve the prefix.
	prefix := []byte("prefix")
	out, err := AppendQuery(append([]byte(nil), prefix...), 7, []byte("probe.net"), TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatalf("prefix clobbered: %x", out)
	}
	want, _ := NewQuery(7, "probe.net", TypeA).Pack()
	if !bytes.Equal(out[len(prefix):], want) {
		t.Fatalf("suffix mismatch:\n got %x\nwant %x", out[len(prefix):], want)
	}

	// Property check over arbitrary ids and label contents.
	f := func(id uint16, l1, l2 []byte) bool {
		name := sanitizeLabel(l1) + "." + sanitizeLabel(l2) + ".net"
		want, wantErr := NewQuery(id, name, TypeA).Pack()
		got, gotErr := AppendQuery(nil, id, []byte(name), TypeA)
		if (wantErr == nil) != (gotErr == nil) {
			return false
		}
		return wantErr != nil || bytes.Equal(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sanitizeLabel maps arbitrary bytes into a dot- and escape-free label so
// the property check compares encodings, not escape parsing.
func sanitizeLabel(b []byte) string {
	if len(b) == 0 {
		return "x"
	}
	if len(b) > 70 {
		b = b[:70] // keep some over-63 inputs to hit the error path
	}
	out := make([]byte, len(b))
	for i, c := range b {
		out[i] = 'a' + c%26
	}
	return string(out)
}
