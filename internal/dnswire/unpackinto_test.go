package dnswire

import (
	"reflect"
	"testing"
)

// sectionsEqual compares two messages semantically: headers and section
// contents must match, but a nil section and a length-0 section are the
// same (UnpackInto keeps empty sections non-nil to reuse their backing
// arrays).
func messagesEqual(a, b *Message) bool {
	if a.Header != b.Header {
		return false
	}
	secs := func(m *Message) [][]RR { return [][]RR{m.Answers, m.Authority, m.Additional} }
	if len(a.Questions) != len(b.Questions) {
		return false
	}
	for i := range a.Questions {
		if a.Questions[i] != b.Questions[i] {
			return false
		}
	}
	as, bs := secs(a), secs(b)
	for s := range as {
		if len(as[s]) != len(bs[s]) {
			return false
		}
		for i := range as[s] {
			x, y := as[s][i], bs[s][i]
			// Data buffers may differ in nil-ness for empty RDATA.
			if string(x.Data) != string(y.Data) {
				return false
			}
			x.Data, y.Data = nil, nil
			if !reflect.DeepEqual(x, y) {
				return false
			}
		}
	}
	return true
}

// TestUnpackIntoReuse decodes a sequence of differently shaped messages
// through one scratch Message and checks each result against a fresh
// Unpack — stale state from a bigger earlier message must never leak into
// a smaller later one.
func TestUnpackIntoReuse(t *testing.T) {
	q := NewQuery(7, "www.example.com", TypeA)
	rich := NewResponse(q)
	rich.Header.RA = true
	rich.AnswerA(0x01020304, 300)
	rich.AnswerA(0x05060708, 300)
	rich.Answers = append(rich.Answers, RR{
		Name: "www.example.com", Type: TypeCNAME, Class: ClassIN, TTL: 60,
		Target: "alias.example.net",
	})
	rich.Authority = append(rich.Authority, RR{
		Name: "example.com", Type: TypeNS, Class: ClassIN, TTL: 60,
		Target: "ns1.example.com",
	})

	txt := NewResponse(q)
	txt.Answers = append(txt.Answers, RR{
		Name: "www.example.com", Type: TypeTXT, Class: ClassIN, TTL: 5, Target: "hello",
	})

	empty := NewResponse(q)
	empty.Questions = nil
	empty.Header.Rcode = RcodeRefused

	var scratch Message
	for i, m := range []*Message{rich, txt, empty, q, rich, empty} {
		wire := m.MustPack()
		want, err := Unpack(wire)
		if err != nil {
			t.Fatalf("step %d: Unpack: %v", i, err)
		}
		if err := UnpackInto(&scratch, wire); err != nil {
			t.Fatalf("step %d: UnpackInto: %v", i, err)
		}
		if !messagesEqual(&scratch, want) {
			t.Fatalf("step %d: reused decode differs:\n got %+v\nwant %+v", i, &scratch, want)
		}
	}
}

// TestUnpackIntoErrors mirrors Unpack's rejection behavior and confirms
// the scratch stays usable after an error.
func TestUnpackIntoErrors(t *testing.T) {
	var scratch Message
	if err := UnpackInto(&scratch, []byte{1, 2, 3}); err == nil {
		t.Error("short header accepted")
	}
	wire := NewQuery(9, "ok.example.com", TypeA).MustPack()
	if err := UnpackInto(&scratch, append(wire, 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if err := UnpackInto(&scratch, wire); err != nil {
		t.Fatalf("scratch unusable after errors: %v", err)
	}
	if q, ok := scratch.Question1(); !ok || q.Name != "ok.example.com" {
		t.Errorf("decode after errors: %+v", scratch)
	}
}

// TestUnpackIntoAllocs bounds the steady-state allocations of the reusing
// decode path: after warm-up, only name/target strings allocate.
func TestUnpackIntoAllocs(t *testing.T) {
	q := NewQuery(7, "or003.0001234.ucfsealresearch.net", TypeA)
	resp := NewResponse(q)
	resp.Header.RA = true
	resp.AnswerA(0x01020304, 60)
	wire := resp.MustPack()

	var scratch Message
	if err := UnpackInto(&scratch, wire); err != nil {
		t.Fatal(err)
	}
	steady := testing.AllocsPerRun(200, func() {
		if err := UnpackInto(&scratch, wire); err != nil {
			t.Fatal(err)
		}
	})
	// One question name + one RR name string; everything structural reused.
	if steady > 2 {
		t.Errorf("steady-state UnpackInto allocates %.1f times per op, want ≤ 2", steady)
	}

	fresh := testing.AllocsPerRun(50, func() {
		if _, err := Unpack(wire); err != nil {
			t.Fatal(err)
		}
	})
	if steady >= fresh {
		t.Errorf("reusing decode (%.1f allocs/op) not cheaper than fresh Unpack (%.1f)", steady, fresh)
	}
}
