package dnswire

import (
	"testing"
	"testing/quick"
)

func TestTCPFramingRoundTrip(t *testing.T) {
	q := NewQuery(9, "or001.0000123.ucfsealresearch.net", TypeA)
	wire, err := q.PackTCP()
	if err != nil {
		t.Fatal(err)
	}
	p := &StreamParser{}
	msgs, err := p.Feed(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("messages = %d", len(msgs))
	}
	if got, _ := msgs[0].Question1(); got.Name != "or001.0000123.ucfsealresearch.net" {
		t.Errorf("qname = %q", got.Name)
	}
	if p.Pending() != 0 {
		t.Errorf("pending = %d", p.Pending())
	}
}

func TestStreamParserSegmentBoundaries(t *testing.T) {
	// Three messages, fed one byte at a time: reassembly must be exact.
	var stream []byte
	for i := 0; i < 3; i++ {
		m := NewQuery(uint16(i+1), "x.example.net", TypeA)
		var err error
		stream, err = m.AppendTCP(stream)
		if err != nil {
			t.Fatal(err)
		}
	}
	p := &StreamParser{}
	var got []*Message
	for _, b := range stream {
		msgs, err := p.Feed([]byte{b})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, msgs...)
	}
	if len(got) != 3 {
		t.Fatalf("messages = %d", len(got))
	}
	for i, m := range got {
		if m.Header.ID != uint16(i+1) {
			t.Errorf("message %d has ID %d", i, m.Header.ID)
		}
	}
}

func TestStreamParserCoalescedFrames(t *testing.T) {
	var stream []byte
	for i := 0; i < 5; i++ {
		m := NewQuery(uint16(i), "y.example.net", TypeA)
		var err error
		stream, err = m.AppendTCP(stream)
		if err != nil {
			t.Fatal(err)
		}
	}
	p := &StreamParser{}
	msgs, err := p.Feed(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 5 {
		t.Errorf("messages = %d", len(msgs))
	}
}

func TestStreamParserRejectsOversized(t *testing.T) {
	p := &StreamParser{MaxMessage: 64}
	if _, err := p.Feed([]byte{0xFF, 0xFF}); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestStreamParserBadFrame(t *testing.T) {
	p := &StreamParser{}
	// Frame of 3 garbage bytes: shorter than a DNS header.
	if _, err := p.Feed([]byte{0, 3, 1, 2, 3}); err == nil {
		t.Error("garbage frame accepted")
	}
}

func TestPropertyTCPFramingRoundTrip(t *testing.T) {
	f := func(id uint16, count uint8) bool {
		n := int(count%5) + 1
		var stream []byte
		for i := 0; i < n; i++ {
			m := NewQuery(id+uint16(i), "p.example.net", TypeA)
			var err error
			stream, err = m.AppendTCP(stream)
			if err != nil {
				return false
			}
		}
		p := &StreamParser{}
		// Split at an arbitrary point.
		cut := int(id) % (len(stream) + 1)
		a, err := p.Feed(stream[:cut])
		if err != nil {
			return false
		}
		b, err := p.Feed(stream[cut:])
		if err != nil {
			return false
		}
		return len(a)+len(b) == n && p.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
