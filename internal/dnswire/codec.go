package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by message encoding and decoding.
var (
	ErrShortHeader    = errors.New("dnswire: message shorter than header")
	ErrTruncatedRR    = errors.New("dnswire: truncated resource record")
	ErrRDataTooLong   = errors.New("dnswire: RDATA exceeds 65535 octets")
	ErrTooManyRecords = errors.New("dnswire: section count exceeds message size")
)

// header flag bit layout within the 16-bit flags word.
const (
	flagQR     = 1 << 15
	flagAA     = 1 << 10
	flagTC     = 1 << 9
	flagRD     = 1 << 8
	flagRA     = 1 << 7
	opcodeMask = 0xF
	zMask      = 0x7
	rcodeMask  = 0xF
)

func (h Header) flags() uint16 {
	var f uint16
	if h.QR {
		f |= flagQR
	}
	f |= uint16(h.Opcode&opcodeMask) << 11
	if h.AA {
		f |= flagAA
	}
	if h.TC {
		f |= flagTC
	}
	if h.RD {
		f |= flagRD
	}
	if h.RA {
		f |= flagRA
	}
	f |= uint16(h.Z&zMask) << 4
	f |= uint16(h.Rcode & rcodeMask)
	return f
}

func headerFromFlags(id, f uint16) Header {
	return Header{
		ID:     id,
		QR:     f&flagQR != 0,
		Opcode: Opcode(f >> 11 & opcodeMask),
		AA:     f&flagAA != 0,
		TC:     f&flagTC != 0,
		RD:     f&flagRD != 0,
		RA:     f&flagRA != 0,
		Z:      uint8(f >> 4 & zMask),
		Rcode:  Rcode(f & rcodeMask),
	}
}

// Append encodes the message in wire format and appends it to dst,
// returning the extended slice.
func (m *Message) Append(dst []byte) ([]byte, error) {
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[0:], m.Header.ID)
	binary.BigEndian.PutUint16(hdr[2:], m.Header.flags())
	binary.BigEndian.PutUint16(hdr[4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(hdr[6:], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(hdr[8:], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(hdr[10:], uint16(len(m.Additional)))
	dst = append(dst, hdr[:]...)

	var err error
	for _, q := range m.Questions {
		if dst, err = appendName(dst, q.Name); err != nil {
			return nil, fmt.Errorf("question %q: %w", q.Name, err)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(q.Type))
		dst = binary.BigEndian.AppendUint16(dst, uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for i := range sec {
			if dst, err = appendRR(dst, &sec[i]); err != nil {
				return nil, err
			}
		}
	}
	return dst, nil
}

// Pack encodes the message into a freshly allocated wire-format buffer.
func (m *Message) Pack() ([]byte, error) {
	return m.Append(make([]byte, 0, 128))
}

// MustPack is Pack for messages built from trusted constants; it panics on
// encoding errors and is intended for tests and static fixtures only.
func (m *Message) MustPack() []byte {
	b, err := m.Pack()
	if err != nil {
		panic(err)
	}
	return b
}

func appendRR(dst []byte, rr *RR) ([]byte, error) {
	var err error
	if dst, err = appendName(dst, rr.Name); err != nil {
		return nil, fmt.Errorf("rr %q: %w", rr.Name, err)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(rr.Type))
	dst = binary.BigEndian.AppendUint16(dst, uint16(rr.Class))
	dst = binary.BigEndian.AppendUint32(dst, rr.TTL)

	rdata := rr.Data
	if rdata == nil {
		// Synthesize RDATA from the decoded fields.
		switch rr.Type {
		case TypeA:
			rdata = binary.BigEndian.AppendUint32(nil, rr.A)
		case TypeNS, TypeCNAME, TypePTR:
			if rdata, err = appendName(nil, rr.Target); err != nil {
				return nil, fmt.Errorf("rr %q rdata: %w", rr.Name, err)
			}
		case TypeMX:
			rdata = binary.BigEndian.AppendUint16(nil, rr.Pref)
			if rdata, err = appendName(rdata, rr.Target); err != nil {
				return nil, fmt.Errorf("rr %q rdata: %w", rr.Name, err)
			}
		case TypeTXT:
			if len(rr.Target) > 255 {
				return nil, fmt.Errorf("rr %q: %w", rr.Name, ErrRDataTooLong)
			}
			rdata = append([]byte{byte(len(rr.Target))}, rr.Target...)
		default:
			rdata = []byte{}
		}
	}
	if len(rdata) > 0xFFFF {
		return nil, fmt.Errorf("rr %q: %w", rr.Name, ErrRDataTooLong)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(rdata)))
	return append(dst, rdata...), nil
}

// Unpack decodes a wire-format message. Decoding is deliberately tolerant of
// the protocol deviations the measurement studies — empty question sections,
// nonzero Z bits, unknown record types, malformed RDATA — but strict about
// structural integrity (truncation, bad pointers), mirroring what a libpcap
// parser would accept.
func Unpack(msg []byte) (*Message, error) {
	m := new(Message)
	if err := UnpackInto(m, msg); err != nil {
		return nil, err
	}
	return m, nil
}

// UnpackInto decodes a wire-format message into m, reusing m's section
// slices, per-record RDATA buffers, and name arena across calls. It
// accepts exactly the messages Unpack accepts and yields semantically
// identical results, with one representational difference: a section
// absent from the wire is left as a length-0 (possibly non-nil) slice
// rather than nil, so the backing arrays survive for the next call. A
// streaming consumer decoding millions of R2 packets into one scratch
// Message runs the whole parse allocation-free in steady state — name and
// TXT strings alias m's arena instead of being materialized per call.
//
// The aliasing sharpens the reuse contract: every string in m (question
// names, RR names, targets) is overwritten in place by the next UnpackInto
// on the same m. Callers that retain a decoded name past that point —
// cache keys, deferred callbacks — must strings.Clone it first. Beware
// that assigning a map entry counts as retaining the key even when the
// key is already present (the runtime may install the live operand), so
// map writes keyed by a decoded name always need the clone. On error m's
// contents are unspecified; it remains valid as scratch for the next
// call.
func UnpackInto(m *Message, msg []byte) error {
	if len(msg) < 12 {
		return ErrShortHeader
	}
	id := binary.BigEndian.Uint16(msg[0:])
	flags := binary.BigEndian.Uint16(msg[2:])
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))
	// Each question needs ≥5 bytes, each RR ≥11; reject counts that cannot fit.
	if qd*5+(an+ns+ar)*11 > len(msg)-12 {
		return ErrTooManyRecords
	}

	m.Header = headerFromFlags(id, flags)
	m.arena = m.arena[:0]
	off := 12
	var err error
	m.Questions = m.Questions[:0]
	if cap(m.Questions) < qd {
		m.Questions = make([]Question, 0, qd)
	}
	for i := 0; i < qd; i++ {
		var q Question
		if q.Name, off, err = m.readName(msg, off); err != nil {
			return fmt.Errorf("question %d: %w", i, err)
		}
		if off+4 > len(msg) {
			return fmt.Errorf("question %d: %w", i, ErrTruncatedRR)
		}
		q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
		q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	if m.Answers, off, err = m.readSection(m.Answers, an, msg, off); err != nil {
		return err
	}
	if m.Authority, off, err = m.readSection(m.Authority, ns, msg, off); err != nil {
		return err
	}
	if m.Additional, off, err = m.readSection(m.Additional, ar, msg, off); err != nil {
		return err
	}
	if off != len(msg) {
		return ErrTrailingGarbage
	}
	return nil
}

// readSection decodes n records into s, reusing its backing array (and
// each element's RDATA buffer) when large enough.
func (m *Message) readSection(s []RR, n int, msg []byte, off int) ([]RR, int, error) {
	if cap(s) < n {
		s = make([]RR, n)
	}
	s = s[:n]
	for i := 0; i < n; i++ {
		var err error
		if off, err = m.readRRInto(&s[i], msg, off); err != nil {
			return s, 0, fmt.Errorf("rr %d: %w", i, err)
		}
	}
	return s, off, nil
}

// readRRInto decodes one resource record into *rr, reusing rr's RDATA
// buffer; every other field is overwritten.
func (m *Message) readRRInto(rr *RR, msg []byte, off int) (int, error) {
	data := rr.Data[:0]
	*rr = RR{}
	var err error
	if rr.Name, off, err = m.readName(msg, off); err != nil {
		return 0, err
	}
	if off+10 > len(msg) {
		return 0, ErrTruncatedRR
	}
	rr.Type = Type(binary.BigEndian.Uint16(msg[off:]))
	rr.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
	rr.TTL = binary.BigEndian.Uint32(msg[off+4:])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return 0, ErrTruncatedRR
	}
	rr.Data = append(data, msg[off:off+rdlen]...)
	rdStart := off
	off += rdlen

	switch rr.Type {
	case TypeA:
		if rdlen != 4 {
			rr.Malformed = true
			break
		}
		rr.A = binary.BigEndian.Uint32(rr.Data)
	case TypeNS, TypeCNAME, TypePTR:
		target, end, err := m.readName(msg, rdStart)
		if err != nil || end != rdStart+rdlen {
			rr.Malformed = true
			break
		}
		rr.Target = target
	case TypeMX:
		if rdlen < 3 {
			rr.Malformed = true
			break
		}
		rr.Pref = binary.BigEndian.Uint16(rr.Data)
		target, end, err := m.readName(msg, rdStart+2)
		if err != nil || end != rdStart+rdlen {
			rr.Malformed = true
			break
		}
		rr.Target = target
	case TypeTXT:
		if rdlen < 1 || int(rr.Data[0]) != rdlen-1 {
			rr.Malformed = true
			break
		}
		rr.Target = m.internBytes(rr.Data[1:])
	}
	return off, nil
}

// AppendQuery appends the wire form of a standard recursive query for
// (name, t) — RD set, one question, class IN — to dst, returning the
// extended slice. It is the zero-alloc equivalent of
// NewQuery(id, string(name), t).Pack() for names already in canonical form
// (lowercase, no trailing dot), which every generated probe name is; RFC
// 1035 §5.1 escapes are honored exactly as in Pack.
func AppendQuery(dst []byte, id uint16, name []byte, t Type) ([]byte, error) {
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[0:], id)
	binary.BigEndian.PutUint16(hdr[2:], flagRD)
	hdr[5] = 1 // QDCount
	dst = append(dst, hdr[:]...)
	var err error
	if dst, err = appendNameBytes(dst, name); err != nil {
		return nil, fmt.Errorf("question %q: %w", name, err)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(t))
	return binary.BigEndian.AppendUint16(dst, uint16(ClassIN)), nil
}

// NewQuery builds a standard recursive query for (name, type), matching the
// probe queries of the measurement: RD set, one question, class IN.
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, RD: true},
		Questions: []Question{{Name: CanonicalName(name), Type: t, Class: ClassIN}},
	}
}

// NewResponse builds a response skeleton for the given query: same ID and
// question, QR set, RD copied. Flag fields beyond that are left for the
// responder to fill in — which is exactly where the studied behaviours differ.
func NewResponse(q *Message) *Message {
	resp := &Message{
		Header: Header{ID: q.Header.ID, QR: true, RD: q.Header.RD},
	}
	resp.Questions = append(resp.Questions, q.Questions...)
	return resp
}

// NewResponseInto is NewResponse writing into resp, reusing its section
// slices across calls — the per-packet reply path of the simulated servers.
// resp must not alias q and encodes byte-identically to NewResponse(q) (a
// cleared section is length-0 rather than nil, which packs the same).
func NewResponseInto(resp, q *Message) {
	resp.Header = Header{ID: q.Header.ID, QR: true, RD: q.Header.RD}
	resp.Questions = append(resp.Questions[:0], q.Questions...)
	resp.Answers = resp.Answers[:0]
	resp.Authority = resp.Authority[:0]
	resp.Additional = resp.Additional[:0]
}

// AnswerA appends an A record answering the first question with addr.
func (m *Message) AnswerA(addr uint32, ttl uint32) *Message {
	name := ""
	if q, ok := m.Question1(); ok {
		name = q.Name
	}
	m.Answers = append(m.Answers, RR{
		Name: name, Type: TypeA, Class: ClassIN, TTL: ttl, A: addr,
	})
	return m
}
