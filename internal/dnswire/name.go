package dnswire

import (
	"errors"
	"fmt"
	"strings"
	"unsafe"
)

// Errors returned by name encoding and decoding.
var (
	ErrNameTooLong     = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong    = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel      = errors.New("dnswire: empty label")
	ErrTruncatedName   = errors.New("dnswire: truncated name")
	ErrBadPointer      = errors.New("dnswire: bad compression pointer")
	ErrPointerLoop     = errors.New("dnswire: compression pointer loop")
	ErrReservedLabel   = errors.New("dnswire: reserved label type")
	ErrTrailingGarbage = errors.New("dnswire: trailing bytes after message")
)

const (
	maxNameWire  = 255 // RFC 1035 §2.3.4: total name length on the wire
	maxLabelWire = 63  // RFC 1035 §2.3.4: single label length
)

// CanonicalName lowercases a domain name and strips one trailing dot, so
// "WWW.Example.COM." and "www.example.com" compare equal. DNS name matching
// is case-insensitive (RFC 1035 §2.3.3) and the flow-grouping step of the
// measurement (matching Q1/Q2/R1/R2 by qname) relies on this normalization,
// including against resolvers that apply 0x20 randomization.
func CanonicalName(name string) string {
	name = strings.TrimSuffix(name, ".")
	return strings.ToLower(name)
}

// appendName encodes a presentation-form name in uncompressed wire format
// and appends it to dst. The empty string encodes the root (a single zero
// octet). RFC 1035 §5.1 escapes are honored: "\." is a literal dot inside
// a label, "\\" a literal backslash, and "\DDD" an arbitrary octet.
// Compression on output is intentionally not implemented: none of the
// paper's flows require it and many deployed resolvers never emit pointers
// either; decoding (below) accepts compressed names from any peer.
func appendName(dst []byte, name string) ([]byte, error) {
	return appendNameAny(dst, name)
}

// appendNameBytes is appendName for names held in byte slices (the zero-
// alloc probe-name path); the encodings are identical.
func appendNameBytes(dst, name []byte) ([]byte, error) {
	return appendNameAny(dst, name)
}

func appendNameAny[T string | []byte](dst []byte, name T) ([]byte, error) {
	if len(name) == 0 || (len(name) == 1 && name[0] == '.') {
		return append(dst, 0), nil
	}
	// Trim one trailing dot, but only if it is a real separator (an even
	// number of backslashes precedes it).
	if name[len(name)-1] == '.' {
		bs := 0
		for i := len(name) - 2; i >= 0 && name[i] == '\\'; i-- {
			bs++
		}
		if bs%2 == 0 {
			name = name[:len(name)-1]
		}
	}
	// Label bytes go straight into dst behind a placeholder length octet
	// that is backpatched at each separator: no per-call scratch, no
	// closure — the hot probe-encode path must stay allocation-free.
	wireLen := 1 // terminating root octet
	lenPos := len(dst)
	dst = append(dst, 0)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '\\':
			if i+1 >= len(name) {
				return nil, fmt.Errorf("dnswire: dangling escape in %q", string(name))
			}
			next := name[i+1]
			if next >= '0' && next <= '9' {
				if i+3 >= len(name) || !isDigit(name[i+2]) || !isDigit(name[i+3]) {
					return nil, fmt.Errorf("dnswire: bad \\DDD escape in %q", string(name))
				}
				v := int(next-'0')*100 + int(name[i+2]-'0')*10 + int(name[i+3]-'0')
				if v > 255 {
					return nil, fmt.Errorf("dnswire: \\DDD escape %d out of range in %q", v, string(name))
				}
				dst = append(dst, byte(v))
				i += 3
				continue
			}
			dst = append(dst, next)
			i++
		case c == '.':
			var err error
			if wireLen, err = closeLabel(dst, lenPos, wireLen); err != nil {
				return nil, nameErr(err, string(name))
			}
			lenPos = len(dst)
			dst = append(dst, 0)
		default:
			dst = append(dst, c)
		}
	}
	if _, err := closeLabel(dst, lenPos, wireLen); err != nil {
		return nil, nameErr(err, string(name))
	}
	return append(dst, 0), nil
}

// closeLabel validates the label written at dst[lenPos+1:] and backpatches
// its length octet, returning the updated running wire length.
func closeLabel(dst []byte, lenPos, wireLen int) (int, error) {
	n := len(dst) - lenPos - 1
	if n == 0 {
		return 0, ErrEmptyLabel
	}
	if n > maxLabelWire {
		return 0, fmt.Errorf("%w: %q", ErrLabelTooLong, dst[lenPos+1:])
	}
	wireLen += 1 + n
	if wireLen > maxNameWire {
		return 0, ErrNameTooLong
	}
	dst[lenPos] = byte(n)
	return wireLen, nil
}

// nameErr attaches the offending name to closeLabel's bare sentinels.
func nameErr(err error, name string) error {
	switch {
	case errors.Is(err, ErrEmptyLabel):
		return fmt.Errorf("%w in %q", ErrEmptyLabel, name)
	case errors.Is(err, ErrNameTooLong):
		return fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	return err
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// appendPresentation renders one wire label into presentation form,
// escaping dots, backslashes and non-printable octets (RFC 1035 §5.1), and
// lowercasing ASCII letters (names compare case-insensitively and the
// measurement groups flows by canonical qname).
func appendPresentation(dst []byte, label []byte) []byte {
	for _, c := range label {
		switch {
		case c == '.' || c == '\\':
			dst = append(dst, '\\', c)
		case c < 0x21 || c > 0x7E:
			dst = append(dst, '\\', '0'+c/100, '0'+c/10%10, '0'+c%10)
		case c >= 'A' && c <= 'Z':
			dst = append(dst, c+'a'-'A')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// arenaString returns m.arena[start:] as a string aliasing the arena's
// storage — the zero-copy tail of every readName. The string stays valid
// even if later names regrow the arena (the old backing array survives
// behind the string), and is invalidated only by the next UnpackInto on m,
// which rewinds the arena and overwrites it in place.
func (m *Message) arenaString(start int) string {
	n := len(m.arena) - start
	if n == 0 {
		return ""
	}
	return unsafe.String(&m.arena[start], n)
}

// internBytes copies b into m's arena and returns it as an arena string,
// subject to the same lifetime rule as arenaString.
func (m *Message) internBytes(b []byte) string {
	start := len(m.arena)
	m.arena = append(m.arena, b...)
	return m.arenaString(start)
}

// readName decodes a possibly compressed name starting at off in msg. It
// returns the decoded name in presentation form (lowercase, no trailing
// dot) and the offset of the first byte after the name at its original
// position. The returned string aliases m's arena: it is valid until the
// next UnpackInto on m — the price of decoding millions of R2 packets
// through one scratch Message without a per-name allocation.
func (m *Message) readName(msg []byte, off int) (string, int, error) {
	start := len(m.arena)
	b := m.arena
	ptrBudget := len(msg) // each pointer must strictly decrease; budget bounds loops
	jumped := false
	next := 0 // resume offset once the first pointer is followed
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedName
		}
		c := int(msg[off])
		switch {
		case c == 0:
			if !jumped {
				next = off + 1
			}
			m.arena = b
			return m.arenaString(start), next, nil
		case c < 64: // ordinary label
			end := off + 1 + c
			if end > len(msg) {
				return "", 0, ErrTruncatedName
			}
			if len(b) != start {
				b = append(b, '.')
			}
			if len(b)-start+c > 4*maxNameWire {
				return "", 0, ErrNameTooLong
			}
			b = appendPresentation(b, msg[off+1:end])
			off = end
		case c >= 0xC0: // compression pointer
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedName
			}
			target := (c&0x3F)<<8 | int(msg[off+1])
			if target >= off {
				return "", 0, ErrBadPointer
			}
			if ptrBudget--; ptrBudget <= 0 {
				return "", 0, ErrPointerLoop
			}
			if !jumped {
				next = off + 2
				jumped = true
			}
			off = target
		default: // 0x40 and 0x80 label types are reserved
			return "", 0, ErrReservedLabel
		}
	}
}
