package dnswire

// EDNS(0) support (RFC 6891), the paper's reference [17]: "Originally, DNS
// had a packet size limited to 512 bytes. However, due to recent update
// [EDNS(0)], it is now possible to have more than 512 bytes in DNS
// responses." — the mechanism that makes large-response amplification
// (§II-C) possible over UDP.
//
// EDNS is carried as an OPT pseudo-record in the additional section: the
// record's class field holds the sender's UDP payload size and the TTL
// field packs the extended rcode and flags.

// ClassicMaxUDP is the pre-EDNS UDP message size limit (RFC 1035 §4.2.1).
const ClassicMaxUDP = 512

// DefaultEDNSSize is the payload size advertised by the probe queries when
// EDNS is enabled (BIND's long-standing default).
const DefaultEDNSSize = 4096

// EDNS is the decoded OPT pseudo-record state of a message.
type EDNS struct {
	// UDPSize is the sender's advertised maximum UDP payload.
	UDPSize uint16
	// ExtRcode is the upper 8 bits of the extended rcode.
	ExtRcode uint8
	// Version is the EDNS version (0).
	Version uint8
	// DO is the DNSSEC-OK bit.
	DO bool
}

// SetEDNS attaches (or replaces) the OPT record advertising e.
func (m *Message) SetEDNS(e EDNS) {
	ttl := uint32(e.ExtRcode)<<24 | uint32(e.Version)<<16
	if e.DO {
		ttl |= 1 << 15
	}
	opt := RR{
		Name:  "", // root
		Type:  TypeOPT,
		Class: Class(e.UDPSize),
		TTL:   ttl,
		Data:  []byte{},
	}
	for i := range m.Additional {
		if m.Additional[i].Type == TypeOPT {
			m.Additional[i] = opt
			return
		}
	}
	m.Additional = append(m.Additional, opt)
}

// GetEDNS returns the message's EDNS state, if an OPT record is present.
func (m *Message) GetEDNS() (EDNS, bool) {
	for _, rr := range m.Additional {
		if rr.Type != TypeOPT {
			continue
		}
		return EDNS{
			UDPSize:  uint16(rr.Class),
			ExtRcode: uint8(rr.TTL >> 24),
			Version:  uint8(rr.TTL >> 16),
			DO:       rr.TTL&(1<<15) != 0,
		}, true
	}
	return EDNS{}, false
}

// MaxResponseSize returns the UDP payload budget a responder should honor
// for a query: the advertised EDNS size (clamped below the classic
// minimum), or the classic 512-byte limit without EDNS.
func (m *Message) MaxResponseSize() int {
	if e, ok := m.GetEDNS(); ok {
		if e.UDPSize < ClassicMaxUDP {
			return ClassicMaxUDP
		}
		return int(e.UDPSize)
	}
	return ClassicMaxUDP
}

// TruncateTo drops answer records until the packed message fits within
// maxSize, setting the TC bit if anything was dropped (RFC 2181 §9: a
// truncated response signals the client to retry over TCP). It returns the
// packed wire form.
func (m *Message) TruncateTo(maxSize int) ([]byte, error) {
	return m.AppendTruncated(make([]byte, 0, 128), maxSize)
}

// AppendTruncated is TruncateTo appending into dst (only bytes past the
// existing length count against maxSize), for callers reusing a scratch or
// pooled buffer on the per-packet reply path.
func (m *Message) AppendTruncated(dst []byte, maxSize int) ([]byte, error) {
	base := len(dst)
	wire, err := m.Append(dst)
	if err != nil {
		return nil, err
	}
	if len(wire)-base <= maxSize {
		return wire, nil
	}
	m.Header.TC = true
	for len(m.Answers) > 0 {
		m.Answers = m.Answers[:len(m.Answers)-1]
		wire, err = m.Append(wire[:base])
		if err != nil {
			return nil, err
		}
		if len(wire)-base <= maxSize {
			return wire, nil
		}
	}
	// Even the empty-answer header form may exceed tiny budgets; return it
	// regardless — 512 bytes always fits a header plus one question.
	return wire, nil
}
