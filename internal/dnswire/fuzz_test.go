package dnswire

import (
	"testing"
)

// Native fuzz targets. Without -fuzz these run their seed corpora as
// regression tests; with `go test -fuzz=FuzzUnpack ./internal/dnswire`
// they explore the parser adversarially.

func FuzzUnpack(f *testing.F) {
	// Seed corpus: the message shapes the measurement encounters.
	f.Add(NewQuery(1, "or000.0000001.ucfsealresearch.net", TypeA).MustPack())
	resp := NewResponse(NewQuery(2, "www.example.com", TypeA))
	resp.Header.RA = true
	resp.AnswerA(0x01020304, 60)
	f.Add(resp.MustPack())
	eq := &Message{Header: Header{ID: 3, QR: true, Rcode: RcodeServFail}}
	f.Add(eq.MustPack())
	mal := &Message{
		Header:  Header{QR: true},
		Answers: []RR{{Name: "x.net", Type: TypeA, Class: ClassIN, Data: []byte{0}}},
	}
	f.Add(mal.MustPack())
	edns := NewQuery(4, "e.net", TypeANY)
	edns.SetEDNS(EDNS{UDPSize: 4096, DO: true})
	f.Add(edns.MustPack())
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0x0C})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unpack(data)
		if err != nil {
			return
		}
		// Anything that parses must re-encode and re-parse to an equivalent
		// header and question. (Answers with compressed names re-encode in
		// uncompressed form, so sizes may differ; equivalence is semantic.)
		wire, err := msg.Pack()
		if err != nil {
			// Some decodable messages are not re-encodable (e.g. a label
			// that only fit via compression); that is acceptable.
			return
		}
		back, err := Unpack(wire)
		if err != nil {
			t.Fatalf("re-parse failed: %v (wire %x)", err, wire)
		}
		if back.Header != msg.Header {
			t.Fatalf("header changed: %+v vs %+v", back.Header, msg.Header)
		}
		if len(back.Questions) != len(msg.Questions) {
			t.Fatalf("question count changed")
		}
		for i := range msg.Questions {
			if back.Questions[i] != msg.Questions[i] {
				t.Fatalf("question %d changed: %+v vs %+v", i, back.Questions[i], msg.Questions[i])
			}
		}
		if len(back.Answers) != len(msg.Answers) {
			t.Fatalf("answer count changed")
		}
	})
}

func FuzzStreamParser(f *testing.F) {
	q := NewQuery(1, "x.example.net", TypeA)
	framed, _ := q.PackTCP()
	f.Add(framed, 3)
	f.Add([]byte{0, 0}, 1)
	f.Add([]byte{0xFF, 0xFF, 1}, 2)

	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		// Feeding in chunks must agree with feeding at once.
		whole := &StreamParser{}
		wholeMsgs, wholeErr := whole.Feed(append([]byte(nil), data...))

		parts := &StreamParser{}
		var partMsgs []*Message
		var partErr error
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			msgs, err := parts.Feed(data[off:end])
			partMsgs = append(partMsgs, msgs...)
			if err != nil {
				partErr = err
				break
			}
		}
		if (wholeErr == nil) != (partErr == nil) {
			// An error can surface earlier or later depending on chunking,
			// but only in the direction of "later": the whole-feed sees the
			// bad frame immediately. Messages parsed before the error must
			// still agree.
			if wholeErr == nil {
				t.Fatalf("chunked feed errored (%v) but whole feed did not", partErr)
			}
		}
		n := len(partMsgs)
		if len(wholeMsgs) < n {
			n = len(wholeMsgs)
		}
		for i := 0; i < n; i++ {
			if wholeMsgs[i].Header.ID != partMsgs[i].Header.ID {
				t.Fatalf("message %d differs between feeds", i)
			}
		}
		if wholeErr == nil && partErr == nil && len(wholeMsgs) != len(partMsgs) {
			t.Fatalf("message counts differ: %d vs %d", len(wholeMsgs), len(partMsgs))
		}
	})
}
