package dnswire

import (
	"strings"
	"testing"
)

func TestEDNSRoundTrip(t *testing.T) {
	q := NewQuery(1, "example.net", TypeANY)
	q.SetEDNS(EDNS{UDPSize: 4096, DO: true})
	wire := q.MustPack()
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := got.GetEDNS()
	if !ok {
		t.Fatal("OPT record lost")
	}
	if e.UDPSize != 4096 || !e.DO || e.Version != 0 || e.ExtRcode != 0 {
		t.Errorf("EDNS = %+v", e)
	}
	if got.MaxResponseSize() != 4096 {
		t.Errorf("MaxResponseSize = %d", got.MaxResponseSize())
	}
}

func TestSetEDNSReplaces(t *testing.T) {
	q := NewQuery(1, "example.net", TypeA)
	q.SetEDNS(EDNS{UDPSize: 1232})
	q.SetEDNS(EDNS{UDPSize: 4096})
	if len(q.Additional) != 1 {
		t.Fatalf("additional = %d records", len(q.Additional))
	}
	e, _ := q.GetEDNS()
	if e.UDPSize != 4096 {
		t.Errorf("UDPSize = %d", e.UDPSize)
	}
}

func TestNoEDNSDefaults(t *testing.T) {
	q := NewQuery(1, "example.net", TypeA)
	if _, ok := q.GetEDNS(); ok {
		t.Error("phantom OPT record")
	}
	if q.MaxResponseSize() != ClassicMaxUDP {
		t.Errorf("MaxResponseSize = %d", q.MaxResponseSize())
	}
	// Tiny advertised sizes clamp up to the classic minimum.
	q.SetEDNS(EDNS{UDPSize: 100})
	if q.MaxResponseSize() != ClassicMaxUDP {
		t.Errorf("clamped MaxResponseSize = %d", q.MaxResponseSize())
	}
}

func TestExtendedRcodeBits(t *testing.T) {
	m := &Message{Header: Header{QR: true}}
	m.SetEDNS(EDNS{UDPSize: 512, ExtRcode: 0xAB, Version: 0})
	wire := m.MustPack()
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := got.GetEDNS()
	if e.ExtRcode != 0xAB {
		t.Errorf("ExtRcode = %#x", e.ExtRcode)
	}
}

func TestTruncateTo(t *testing.T) {
	q := NewQuery(7, "big.example.net", TypeANY)
	resp := NewResponse(q)
	for i := 0; i < 40; i++ {
		resp.Answers = append(resp.Answers, RR{
			Name: "big.example.net", Type: TypeTXT, Class: ClassIN, TTL: 60,
			Target: strings.Repeat("x", 100),
		})
	}
	full, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= ClassicMaxUDP {
		t.Fatalf("test response too small: %d", len(full))
	}

	// A copy under the classic limit must truncate and set TC.
	small := NewResponse(q)
	small.Answers = append(small.Answers, resp.Answers...)
	wire, err := small.TruncateTo(ClassicMaxUDP)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) > ClassicMaxUDP {
		t.Errorf("truncated wire = %d bytes", len(wire))
	}
	back, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Header.TC {
		t.Error("TC bit not set after truncation")
	}
	if len(back.Answers) >= 40 {
		t.Error("no answers dropped")
	}

	// A large budget leaves the message intact.
	intact := NewResponse(q)
	intact.Answers = append(intact.Answers, resp.Answers...)
	wire2, err := intact.TruncateTo(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire2) != len(full) || intact.Header.TC {
		t.Error("untruncated message modified")
	}
}
