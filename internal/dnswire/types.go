// Package dnswire implements the DNS wire format of RFC 1034/1035 (with the
// EDNS(0) extension of RFC 6891) from scratch on top of the standard library.
//
// It provides the message model used throughout the reproduction: the prober
// encodes Q1 queries with it, every simulated resolver and name server parses
// and builds messages with it, and the analysis pipeline decodes captured R2
// packets with it. Only the subset of the protocol exercised by the paper is
// implemented, but that subset is implemented completely: full header flag
// handling, name compression, and the record types a 2018 open-resolver scan
// encounters in practice.
package dnswire

import (
	"fmt"
	"strings"
)

// Type is a DNS resource record type (RFC 1035 §3.2.2, RFC 6895).
type Type uint16

// Resource record types used by the measurement and its substrates.
const (
	TypeA      Type = 1
	TypeNS     Type = 2
	TypeCNAME  Type = 5
	TypeSOA    Type = 6
	TypePTR    Type = 12
	TypeMX     Type = 15
	TypeTXT    Type = 16
	TypeAAAA   Type = 28
	TypeOPT    Type = 41
	TypeRRSIG  Type = 46
	TypeDNSKEY Type = 48
	TypeANY    Type = 255
)

// String returns the conventional mnemonic for the type.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeOPT:
		return "OPT"
	case TypeRRSIG:
		return "RRSIG"
	case TypeDNSKEY:
		return "DNSKEY"
	case TypeANY:
		return "ANY"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class (RFC 1035 §3.2.4). Only IN is used in practice.
type Class uint16

// DNS classes.
const (
	ClassIN  Class = 1
	ClassCH  Class = 3
	ClassANY Class = 255
)

// String returns the conventional mnemonic for the class.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassCH:
		return "CH"
	case ClassANY:
		return "ANY"
	default:
		return fmt.Sprintf("CLASS%d", uint16(c))
	}
}

// Opcode is the 4-bit DNS operation code.
type Opcode uint8

// Opcodes (RFC 1035 §4.1.1, RFC 6895).
const (
	OpcodeQuery  Opcode = 0
	OpcodeIQuery Opcode = 1
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// Rcode is the 4-bit DNS response code (RFC 1035 §4.1.1, RFC 6895).
// The paper's Table VI analyzes exactly these values.
type Rcode uint8

// Response codes.
const (
	RcodeNoError  Rcode = 0
	RcodeFormErr  Rcode = 1
	RcodeServFail Rcode = 2
	RcodeNXDomain Rcode = 3
	RcodeNotImp   Rcode = 4
	RcodeRefused  Rcode = 5
	RcodeYXDomain Rcode = 6
	RcodeYXRRSet  Rcode = 7
	RcodeNXRRSet  Rcode = 8
	RcodeNotAuth  Rcode = 9
	RcodeNotZone  Rcode = 10
)

// String returns the IANA mnemonic for the rcode, matching the spelling used
// in the paper's Table VI.
func (r Rcode) String() string {
	switch r {
	case RcodeNoError:
		return "NoError"
	case RcodeFormErr:
		return "FormErr"
	case RcodeServFail:
		return "ServFail"
	case RcodeNXDomain:
		return "NXDomain"
	case RcodeNotImp:
		return "NotImp"
	case RcodeRefused:
		return "Refused"
	case RcodeYXDomain:
		return "YXDomain"
	case RcodeYXRRSet:
		return "YXRRSet"
	case RcodeNXRRSet:
		return "NXRRSet"
	case RcodeNotAuth:
		return "NotAuth"
	case RcodeNotZone:
		return "NotZone"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// Header is the 12-byte DNS message header (RFC 1035 §4.1.1), with the flag
// bits unpacked into fields. The RA and AA bits are the primary behavioral
// signals studied in the paper (Tables IV, V and X).
type Header struct {
	ID uint16
	// QR is true for responses.
	QR     bool
	Opcode Opcode
	// AA: Authoritative Answer. Expected to be 0 in all R2 except from the
	// measurement's own authoritative server (paper §IV-B2).
	AA bool
	// TC: TrunCation.
	TC bool
	// RD: Recursion Desired. Set on all probe queries (paper §IV-B1).
	RD bool
	// RA: Recursion Available.
	RA bool
	// Z is the reserved 3-bit field; kept verbatim so nonconforming
	// resolvers that set it survive a round trip.
	Z     uint8
	Rcode Rcode
}

// Question is one entry of the question section (RFC 1035 §4.1.2).
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like presentation form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// RR is one resource record in presentation-friendly decoded form
// (RFC 1035 §4.1.3). RDATA is kept both raw and decoded: the analysis
// pipeline needs the raw bytes to classify malformed answers (the 2013 "N/A"
// form of Table VII) and the decoded value to validate correctness.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	// Data is the raw RDATA as it appeared on the wire.
	Data []byte
	// A holds the decoded IPv4 address for TypeA records (0 otherwise).
	A uint32
	// Target holds the decoded domain name for NS/CNAME/PTR/MX records and
	// the decoded text for TXT records.
	Target string
	// Pref holds the decoded preference for MX records.
	Pref uint16
	// Malformed reports that RDATA could not be decoded according to Type.
	Malformed bool
}

// Message is a complete DNS message (RFC 1035 §4.1).
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR

	// arena backs every name and TXT string UnpackInto materializes for
	// this message. The strings alias this storage, so they are valid only
	// until the next UnpackInto on the same Message — callers that retain a
	// decoded name across decodes must strings.Clone it first.
	arena []byte
}

// Question1 returns the first question, or the zero Question if the question
// section is empty. Responses with an empty question section are themselves a
// studied behaviour (paper §IV-B4), so absence is not an error.
func (m *Message) Question1() (Question, bool) {
	if len(m.Questions) == 0 {
		return Question{}, false
	}
	return m.Questions[0], true
}

// FirstA returns the first A record in the answer section and true, or 0 and
// false when the answer section holds no well-formed A record.
func (m *Message) FirstA() (uint32, bool) {
	for _, rr := range m.Answers {
		if rr.Type == TypeA && !rr.Malformed {
			return rr.A, true
		}
	}
	return 0, false
}

// String renders a compact single-line summary, useful in logs and examples.
func (m *Message) String() string {
	var b strings.Builder
	kind := "query"
	if m.Header.QR {
		kind = "response"
	}
	fmt.Fprintf(&b, "%s id=%d rcode=%s", kind, m.Header.ID, m.Header.Rcode)
	if m.Header.AA {
		b.WriteString(" aa")
	}
	if m.Header.RD {
		b.WriteString(" rd")
	}
	if m.Header.RA {
		b.WriteString(" ra")
	}
	if q, ok := m.Question1(); ok {
		fmt.Fprintf(&b, " q=%q", q.Name)
	}
	fmt.Fprintf(&b, " ans=%d", len(m.Answers))
	return b.String()
}
