package dnswire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "or000.0000001.ucfsealresearch.net", TypeA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if got.Header.ID != 0x1234 {
		t.Errorf("ID = %#x, want 0x1234", got.Header.ID)
	}
	if !got.Header.RD || got.Header.QR || got.Header.RA || got.Header.AA {
		t.Errorf("flags = %+v, want RD only", got.Header)
	}
	qq, ok := got.Question1()
	if !ok {
		t.Fatal("no question decoded")
	}
	if qq.Name != "or000.0000001.ucfsealresearch.net" {
		t.Errorf("qname = %q", qq.Name)
	}
	if qq.Type != TypeA || qq.Class != ClassIN {
		t.Errorf("qtype/qclass = %v/%v", qq.Type, qq.Class)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := NewQuery(7, "www.example.com", TypeA)
	r := NewResponse(q)
	r.Header.RA = true
	r.Header.Rcode = RcodeNoError
	r.AnswerA(0x01020304, 300)
	wire, err := r.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !got.Header.QR || !got.Header.RA || !got.Header.RD {
		t.Errorf("flags: %+v", got.Header)
	}
	a, ok := got.FirstA()
	if !ok || a != 0x01020304 {
		t.Errorf("FirstA = %#x, %v", a, ok)
	}
	if got.Answers[0].Name != "www.example.com" {
		t.Errorf("answer name = %q", got.Answers[0].Name)
	}
	if got.Answers[0].TTL != 300 {
		t.Errorf("TTL = %d", got.Answers[0].TTL)
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	// Every combination of the studied flags must survive the wire,
	// including the deviant ones (RA=0 with answers, AA=1 from a cache).
	for i := 0; i < 1<<5; i++ {
		h := Header{
			ID:    uint16(i * 77),
			QR:    i&1 != 0,
			AA:    i&2 != 0,
			TC:    i&4 != 0,
			RD:    i&8 != 0,
			RA:    i&16 != 0,
			Rcode: Rcode(i % 11),
			Z:     uint8(i % 8),
		}
		m := &Message{Header: h}
		wire := m.MustPack()
		got, err := Unpack(wire)
		if err != nil {
			t.Fatalf("Unpack(%+v): %v", h, err)
		}
		if got.Header != h {
			t.Fatalf("header round trip: got %+v want %+v", got.Header, h)
		}
	}
}

func TestAllRRTypesRoundTrip(t *testing.T) {
	tests := []RR{
		{Name: "a.example.net", Type: TypeA, Class: ClassIN, TTL: 60, A: 0xC0A80101},
		{Name: "example.net", Type: TypeNS, Class: ClassIN, TTL: 3600, Target: "ns1.example.net"},
		{Name: "www.example.net", Type: TypeCNAME, Class: ClassIN, TTL: 60, Target: "example.net"},
		{Name: "example.net", Type: TypeMX, Class: ClassIN, TTL: 60, Pref: 10, Target: "mail.example.net"},
		{Name: "example.net", Type: TypeTXT, Class: ClassIN, TTL: 60, Target: "v=spf1 -all"},
		{Name: "4.3.2.1.in-addr.arpa", Type: TypePTR, Class: ClassIN, TTL: 60, Target: "host.example.net"},
	}
	for _, rr := range tests {
		t.Run(rr.Type.String(), func(t *testing.T) {
			m := &Message{Header: Header{QR: true}, Answers: []RR{rr}}
			wire, err := m.Pack()
			if err != nil {
				t.Fatalf("Pack: %v", err)
			}
			got, err := Unpack(wire)
			if err != nil {
				t.Fatalf("Unpack: %v", err)
			}
			g := got.Answers[0]
			if g.Malformed {
				t.Fatal("round-tripped RR marked malformed")
			}
			if g.Name != rr.Name || g.Type != rr.Type || g.TTL != rr.TTL {
				t.Errorf("got %+v, want %+v", g, rr)
			}
			if g.A != rr.A || g.Target != rr.Target || g.Pref != rr.Pref {
				t.Errorf("decoded fields: got %+v, want %+v", g, rr)
			}
		})
	}
}

func TestEmptyQuestionResponse(t *testing.T) {
	// §IV-B4: some resolvers respond with no question section at all.
	m := &Message{Header: Header{ID: 9, QR: true, Rcode: RcodeServFail}}
	wire := m.MustPack()
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if _, ok := got.Question1(); ok {
		t.Error("expected empty question section")
	}
	if got.Header.Rcode != RcodeServFail {
		t.Errorf("rcode = %v", got.Header.Rcode)
	}
}

func TestMalformedRDATA(t *testing.T) {
	// An A record with 2-byte RDATA (the 2013 "N/A" form) must decode as
	// Malformed rather than fail the whole message.
	m := &Message{
		Header:  Header{QR: true},
		Answers: []RR{{Name: "x.example.net", Type: TypeA, Class: ClassIN, Data: []byte{0, 0}}},
	}
	wire := m.MustPack()
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !got.Answers[0].Malformed {
		t.Error("2-byte A RDATA not marked malformed")
	}
	if _, ok := got.FirstA(); ok {
		t.Error("FirstA returned a malformed record")
	}
}

func TestNameCompressionDecode(t *testing.T) {
	// Hand-build a response using a compression pointer into the question,
	// as BIND emits: answer name = pointer to offset 12.
	q := NewQuery(1, "www.example.com", TypeA)
	wire := q.MustPack()
	// Rewrite counts: 1 answer.
	binary.BigEndian.PutUint16(wire[6:], 1)
	wire[2] |= 0x80        // QR
	rr := []byte{0xC0, 12} // name: pointer to question name
	rr = binary.BigEndian.AppendUint16(rr, uint16(TypeA))
	rr = binary.BigEndian.AppendUint16(rr, uint16(ClassIN))
	rr = binary.BigEndian.AppendUint32(rr, 60)
	rr = binary.BigEndian.AppendUint16(rr, 4)
	rr = append(rr, 1, 2, 3, 4)
	wire = append(wire, rr...)

	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if got.Answers[0].Name != "www.example.com" {
		t.Errorf("compressed name = %q", got.Answers[0].Name)
	}
	if a, _ := got.FirstA(); a != 0x01020304 {
		t.Errorf("A = %#x", a)
	}
}

func TestCompressionPointerLoopRejected(t *testing.T) {
	// A self-pointing name must not hang or crash.
	wire := make([]byte, 12)
	binary.BigEndian.PutUint16(wire[4:], 1) // one question
	wire = append(wire, 0xC0, 12)           // pointer to itself
	wire = append(wire, 0, 1, 0, 1)
	if _, err := Unpack(wire); err == nil {
		t.Fatal("self-pointer accepted")
	}
}

func TestForwardPointerRejected(t *testing.T) {
	wire := make([]byte, 12)
	binary.BigEndian.PutUint16(wire[4:], 1)
	wire = append(wire, 0xC0, 40) // points past itself
	wire = append(wire, 0, 1, 0, 1)
	if _, err := Unpack(wire); err == nil {
		t.Fatal("forward pointer accepted")
	}
}

func TestTruncatedInputs(t *testing.T) {
	q := NewQuery(1, "or000.0000001.ucfsealresearch.net", TypeA)
	wire := q.MustPack()
	for cut := 0; cut < len(wire); cut++ {
		if _, err := Unpack(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCountOverflowRejected(t *testing.T) {
	wire := make([]byte, 12)
	binary.BigEndian.PutUint16(wire[6:], 0xFFFF) // claims 65535 answers
	if _, err := Unpack(wire); err == nil {
		t.Fatal("absurd answer count accepted")
	}
}

func TestNameLimits(t *testing.T) {
	if _, err := appendName(nil, strings.Repeat("a", 64)+".net"); err == nil {
		t.Error("64-byte label accepted")
	}
	long := strings.Repeat("abcdefgh.", 32) + "net" // > 255 wire bytes
	if _, err := appendName(nil, long); err == nil {
		t.Error("over-long name accepted")
	}
	if _, err := appendName(nil, "a..b"); err == nil {
		t.Error("empty label accepted")
	}
	if b, err := appendName(nil, ""); err != nil || !bytes.Equal(b, []byte{0}) {
		t.Errorf("root encoding = %v, %v", b, err)
	}
	if b, err := appendName(nil, "."); err != nil || !bytes.Equal(b, []byte{0}) {
		t.Errorf("dot root encoding = %v, %v", b, err)
	}
}

func TestCanonicalName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"WWW.Example.COM.", "www.example.com"},
		{"www.example.com", "www.example.com"},
		{"", ""},
		{"NET", "net"},
	}
	for _, tt := range tests {
		if got := CanonicalName(tt.in); got != tt.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// randomName builds a syntactically valid random domain name.
func randomName(rng *rand.Rand) string {
	labels := 1 + rng.Intn(4)
	parts := make([]string, labels)
	for i := range parts {
		n := 1 + rng.Intn(12)
		b := make([]byte, n)
		for j := range b {
			b[j] = "abcdefghijklmnopqrstuvwxyz0123456789-"[rng.Intn(37)]
		}
		parts[i] = string(b)
	}
	return strings.Join(parts, ".")
}

func TestPropertyMessageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(id uint16, flagBits uint8, rcode uint8, a uint32, ttl uint32) bool {
		name := randomName(rng)
		m := &Message{
			Header: Header{
				ID: id, QR: true,
				AA: flagBits&1 != 0, TC: flagBits&2 != 0,
				RD: flagBits&4 != 0, RA: flagBits&8 != 0,
				Rcode: Rcode(rcode % 16),
			},
			Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
		}
		if flagBits&16 != 0 {
			m.Answers = []RR{{Name: name, Type: TypeA, Class: ClassIN, TTL: ttl, A: a}}
		}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		if got.Header != m.Header {
			return false
		}
		gq, _ := got.Question1()
		if gq.Name != name {
			return false
		}
		if flagBits&16 != 0 {
			ga, ok := got.FirstA()
			if !ok || ga != a || got.Answers[0].TTL != ttl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnpackNeverPanics(t *testing.T) {
	// Fuzz-style: random byte soup must return an error or a message,
	// never panic. Seed corpus from a valid packet with random mutations.
	rng := rand.New(rand.NewSource(7))
	base := NewQuery(1, "or000.0000001.ucfsealresearch.net", TypeA).MustPack()
	for i := 0; i < 5000; i++ {
		b := append([]byte(nil), base...)
		mutations := 1 + rng.Intn(6)
		for j := 0; j < mutations; j++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(256))
		}
		if rng.Intn(4) == 0 {
			b = b[:rng.Intn(len(b)+1)]
		}
		_, _ = Unpack(b) // must not panic
	}
}

func TestStringForms(t *testing.T) {
	if got := RcodeRefused.String(); got != "Refused" {
		t.Errorf("Rcode string = %q", got)
	}
	if got := Rcode(13).String(); got != "RCODE13" {
		t.Errorf("unknown rcode = %q", got)
	}
	if got := TypeANY.String(); got != "ANY" {
		t.Errorf("type string = %q", got)
	}
	if got := Type(999).String(); got != "TYPE999" {
		t.Errorf("unknown type = %q", got)
	}
	m := NewQuery(3, "X.EXAMPLE.net", TypeA)
	if s := m.String(); !strings.Contains(s, "x.example.net") {
		t.Errorf("message string = %q", s)
	}
}

func BenchmarkPackQuery(b *testing.B) {
	q := NewQuery(1, "or003.4999999.ucfsealresearch.net", TypeA)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = q.Append(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpackResponse(b *testing.B) {
	q := NewQuery(1, "or003.4999999.ucfsealresearch.net", TypeA)
	r := NewResponse(q)
	r.Header.RA = true
	r.AnswerA(0xC0A80101, 60)
	wire := r.MustPack()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNameEscaping(t *testing.T) {
	// RFC 1035 §5.1: labels may contain arbitrary octets; presentation
	// form escapes dots, backslashes and non-printables. This is the
	// regression test for the fuzzer-found case of a label containing a
	// literal '.'.
	var wire []byte
	wire = append(wire, make([]byte, 12)...)
	binary.BigEndian.PutUint16(wire[4:], 1)
	wire = append(wire, 1, '.') // one label: "."
	wire = append(wire, 0)      // root
	wire = append(wire, 0, 1, 0, 1)
	msg, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := msg.Question1()
	if q.Name != `\.` {
		t.Fatalf("presentation = %q, want escaped dot", q.Name)
	}
	// Round trip through re-encoding.
	back, err := Unpack(msg.MustPack())
	if err != nil {
		t.Fatal(err)
	}
	if bq, _ := back.Question1(); bq.Name != q.Name {
		t.Errorf("round trip changed name: %q vs %q", bq.Name, q.Name)
	}
}

func TestNameEscapingOctets(t *testing.T) {
	tests := []struct {
		label []byte
		want  string
	}{
		{[]byte{'a', '.', 'b'}, `a\.b`},
		{[]byte{'a', '\\', 'b'}, `a\\b`},
		{[]byte{0x00}, `\000`},
		{[]byte{0xFF}, `\255`},
		{[]byte{' '}, `\032`},
		{[]byte{'A', 'B'}, "ab"}, // case folded
	}
	for _, tt := range tests {
		var wire []byte
		wire = append(wire, make([]byte, 12)...)
		binary.BigEndian.PutUint16(wire[4:], 1)
		wire = append(wire, byte(len(tt.label)))
		wire = append(wire, tt.label...)
		wire = append(wire, 0, 0, 1, 0, 1)
		msg, err := Unpack(wire)
		if err != nil {
			t.Fatalf("%q: %v", tt.label, err)
		}
		q, _ := msg.Question1()
		if q.Name != tt.want {
			t.Errorf("label %q → %q, want %q", tt.label, q.Name, tt.want)
		}
		// And the escaped form re-encodes to the identical wire label.
		enc, err := appendName(nil, q.Name)
		if err != nil {
			t.Fatalf("re-encode %q: %v", q.Name, err)
		}
		lowered := make([]byte, len(tt.label))
		for i, c := range tt.label {
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			lowered[i] = c
		}
		wantWire := append([]byte{byte(len(tt.label))}, lowered...)
		wantWire = append(wantWire, 0)
		if !bytes.Equal(enc, wantWire) {
			t.Errorf("wire round trip for %q: %x, want %x", q.Name, enc, wantWire)
		}
	}
}

func TestNameEscapeParsingErrors(t *testing.T) {
	for _, bad := range []string{`a\`, `a\25`, `a\999`, `a\2x5`} {
		if _, err := appendName(nil, bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
