package dnswire

import (
	"encoding/binary"
	"fmt"
)

// DNS over TCP (RFC 1035 §4.2.2, RFC 7766): each message is preceded by a
// two-byte big-endian length. The StreamParser reassembles messages from
// arbitrary segment boundaries — the deframing any DNS-over-TCP endpoint
// must implement.

// AppendTCP appends msg in TCP framing (length prefix + wire form) to dst.
func (m *Message) AppendTCP(dst []byte) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0) // length placeholder
	dst, err := m.Append(dst)
	if err != nil {
		return nil, err
	}
	size := len(dst) - start - 2
	if size > 0xFFFF {
		return nil, ErrRDataTooLong
	}
	binary.BigEndian.PutUint16(dst[start:], uint16(size))
	return dst, nil
}

// PackTCP encodes msg in TCP framing.
func (m *Message) PackTCP() ([]byte, error) {
	return m.AppendTCP(make([]byte, 0, 128))
}

// StreamParser reassembles TCP-framed DNS messages from a byte stream.
type StreamParser struct {
	buf []byte
	// MaxMessage bounds accepted message sizes (0 = 64 KiB).
	MaxMessage int
}

// Feed appends stream bytes and returns all complete messages now
// available. Partial trailing data is retained for the next Feed.
func (p *StreamParser) Feed(data []byte) ([]*Message, error) {
	p.buf = append(p.buf, data...)
	limit := p.MaxMessage
	if limit <= 0 {
		limit = 0xFFFF
	}
	var out []*Message
	for {
		if len(p.buf) < 2 {
			return out, nil
		}
		size := int(binary.BigEndian.Uint16(p.buf))
		if size > limit {
			return out, fmt.Errorf("dnswire: TCP frame of %d bytes exceeds limit %d", size, limit)
		}
		if len(p.buf) < 2+size {
			return out, nil
		}
		msg, err := Unpack(p.buf[2 : 2+size])
		p.buf = p.buf[2+size:]
		if err != nil {
			return out, fmt.Errorf("dnswire: TCP frame: %w", err)
		}
		out = append(out, msg)
	}
}

// Pending returns the number of buffered, not-yet-parseable bytes.
func (p *StreamParser) Pending() int { return len(p.buf) }
