package dnswire_test

import (
	"fmt"

	"openresolver/internal/dnswire"
)

func ExampleNewQuery() {
	q := dnswire.NewQuery(42, "or000.0000001.ucfsealresearch.net", dnswire.TypeA)
	wire, _ := q.Pack()
	back, _ := dnswire.Unpack(wire)
	question, _ := back.Question1()
	fmt.Println(question)
	// Output: or000.0000001.ucfsealresearch.net IN A
}

func ExampleMessage_TruncateTo() {
	q := dnswire.NewQuery(1, "big.example.net", dnswire.TypeANY)
	resp := dnswire.NewResponse(q)
	for i := 0; i < 40; i++ {
		resp.Answers = append(resp.Answers, dnswire.RR{
			Name: "big.example.net", Type: dnswire.TypeTXT, Class: dnswire.ClassIN,
			Target: "some reasonably long txt record payload for the zone",
		})
	}
	wire, _ := resp.TruncateTo(dnswire.ClassicMaxUDP) // no EDNS: classic 512B limit
	back, _ := dnswire.Unpack(wire)
	fmt.Println(len(wire) <= 512, back.Header.TC)
	// Output: true true
}

func ExampleStreamParser() {
	var stream []byte
	for id := uint16(1); id <= 3; id++ {
		m := dnswire.NewQuery(id, "x.example.net", dnswire.TypeA)
		stream, _ = m.AppendTCP(stream)
	}
	p := &dnswire.StreamParser{}
	msgs, _ := p.Feed(stream)
	fmt.Println(len(msgs))
	// Output: 3
}
