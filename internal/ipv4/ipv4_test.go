package ipv4

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddrStringParseRoundTrip(t *testing.T) {
	tests := []struct {
		s string
		a Addr
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xFFFFFFFF},
		{"192.168.0.1", 0xC0A80001},
		{"10.0.0.1", 0x0A000001},
		{"208.91.197.91", 0xD05BC55B},
	}
	for _, tt := range tests {
		got, err := ParseAddr(tt.s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", tt.s, err)
		}
		if got != tt.a {
			t.Errorf("ParseAddr(%q) = %#x, want %#x", tt.s, got, tt.a)
		}
		if s := tt.a.String(); s != tt.s {
			t.Errorf("String(%#x) = %q, want %q", tt.a, s, tt.s)
		}
	}
}

func TestParseAddrRejects(t *testing.T) {
	for _, s := range []string{
		"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.256",
		"01.2.3.4", "1.2.3.04", "a.b.c.d", "1..2.3", "1.2.3.",
		"-1.2.3.4", "1.2.3.4 ",
	} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) accepted", s)
		}
	}
}

func TestPropertyAddrRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		got, err := ParseAddr(Addr(a).String())
		return err == nil && got == Addr(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockBasics(t *testing.T) {
	b := MustParseBlock("198.18.0.0/15")
	if b.Size() != 131072 {
		t.Errorf("Size = %d", b.Size())
	}
	if b.First() != MustParseAddr("198.18.0.0") || b.Last() != MustParseAddr("198.19.255.255") {
		t.Errorf("range = %v-%v", b.First(), b.Last())
	}
	if !b.Contains(MustParseAddr("198.19.1.2")) {
		t.Error("Contains inside failed")
	}
	if b.Contains(MustParseAddr("198.20.0.0")) {
		t.Error("Contains outside succeeded")
	}
	if b.String() != "198.18.0.0/15" {
		t.Errorf("String = %q", b.String())
	}
}

func TestBlockMasksBase(t *testing.T) {
	b := MustParseBlock("10.1.2.3/8")
	if b.Base != MustParseAddr("10.0.0.0") {
		t.Errorf("base not masked: %v", b.Base)
	}
}

func TestBlockEdges(t *testing.T) {
	whole := MustParseBlock("0.0.0.0/0")
	if whole.Size() != Space {
		t.Errorf("whole space size = %d", whole.Size())
	}
	if !whole.Contains(0xDEADBEEF) {
		t.Error("/0 must contain everything")
	}
	host := MustParseBlock("255.255.255.255/32")
	if host.Size() != 1 || !host.Contains(0xFFFFFFFF) || host.Contains(0xFFFFFFFE) {
		t.Error("/32 semantics wrong")
	}
}

func TestParseBlockRejects(t *testing.T) {
	for _, s := range []string{"1.2.3.4", "1.2.3.4/33", "1.2.3.4/-1", "1.2.3.4/x", "1.2.3/8"} {
		if _, err := ParseBlock(s); err == nil {
			t.Errorf("ParseBlock(%q) accepted", s)
		}
	}
}

func TestReservedBlocklistSize(t *testing.T) {
	bl := NewReservedBlocklist()
	// The true union of Table I's blocks (255.255.255.255/32 lies inside
	// 240.0.0.0/4, so the row sum exceeds the union by one). The paper's
	// printed total, 575,931,649, is an arithmetic error of exactly one /8:
	// the complement of the true union, 2^32-592,708,864 = 3,702,258,432,
	// matches the paper's 2018 Q1 count exactly.
	const want = 592708864
	if got := bl.Size(); got != want {
		t.Errorf("reserved union size = %d, want %d", got, want)
	}
	var tableTotal uint64
	for _, r := range ReservedBlocks {
		tableTotal += r.Block.Size()
	}
	if tableTotal != want+1 {
		t.Errorf("Table I row sum = %d, want %d", tableTotal, want+1)
	}
	if Space-want != 3702258432 {
		t.Errorf("allowed space = %d, want 3702258432 (2018 Q1)", Space-want)
	}
}

func TestReservedBlocklistMembership(t *testing.T) {
	bl := NewReservedBlocklist()
	in := []string{
		"0.0.0.0", "0.255.255.255", "10.0.0.1", "100.64.0.0", "100.127.255.255",
		"127.0.0.1", "169.254.1.1", "172.16.0.1", "172.31.255.255",
		"192.0.0.5", "192.0.2.1", "192.88.99.1", "192.168.1.1",
		"198.18.0.1", "198.51.100.25", "203.0.113.9", "224.0.0.1",
		"239.255.255.255", "240.0.0.1", "255.255.255.255",
	}
	for _, s := range in {
		if !bl.Contains(MustParseAddr(s)) {
			t.Errorf("%s should be reserved", s)
		}
	}
	out := []string{
		"1.0.0.0", "8.8.8.8", "9.255.255.255", "11.0.0.0", "100.63.255.255",
		"100.128.0.0", "126.255.255.255", "128.0.0.0", "169.253.255.255",
		"169.255.0.0", "172.15.255.255", "172.32.0.0", "192.0.1.0",
		"192.0.3.0", "192.88.98.255", "192.88.100.0", "192.167.255.255",
		"192.169.0.0", "198.17.255.255", "198.20.0.0", "198.51.99.255",
		"203.0.112.255", "203.0.114.0", "223.255.255.255",
	}
	for _, s := range out {
		if bl.Contains(MustParseAddr(s)) {
			t.Errorf("%s should not be reserved", s)
		}
	}
}

func TestBlocklistMerging(t *testing.T) {
	bl := NewBlocklist(
		MustParseBlock("10.0.0.0/9"),
		MustParseBlock("10.128.0.0/9"), // adjacent: must merge
		MustParseBlock("10.64.0.0/10"), // contained
	)
	if bl.Size() != 1<<24 {
		t.Errorf("merged size = %d, want %d", bl.Size(), 1<<24)
	}
	if len(bl.starts) != 1 {
		t.Errorf("intervals = %d, want 1", len(bl.starts))
	}
	if got := len(bl.Blocks()); got != 3 {
		t.Errorf("Blocks() = %d entries, want original 3", got)
	}
}

func TestEmptyBlocklist(t *testing.T) {
	bl := NewBlocklist()
	if bl.Size() != 0 || bl.Contains(0x01020304) {
		t.Error("empty blocklist misbehaves")
	}
}

func TestPropertyBlocklistAgreesWithLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		blocks := make([]Block, n)
		for i := range blocks {
			bits := uint8(4 + rng.Intn(29))
			blocks[i] = Block{Base: Addr(rng.Uint32()), Bits: bits}
			blocks[i].Base &= blocks[i].mask()
		}
		bl := NewBlocklist(blocks...)
		for probe := 0; probe < 200; probe++ {
			a := Addr(rng.Uint32())
			if rng.Intn(2) == 0 { // bias probes toward block edges
				b := blocks[rng.Intn(n)]
				switch rng.Intn(4) {
				case 0:
					a = b.First()
				case 1:
					a = b.Last()
				case 2:
					a = b.First() - 1
				case 3:
					a = b.Last() + 1
				}
			}
			want := false
			for _, b := range blocks {
				if b.Contains(a) {
					want = true
					break
				}
			}
			if got := bl.Contains(a); got != want {
				t.Fatalf("trial %d: Contains(%v) = %v, want %v (blocks %v)",
					trial, a, got, want, blocks)
			}
		}
	}
}

func TestIsPrivate(t *testing.T) {
	priv := []string{"10.0.0.1", "172.16.0.1", "172.30.1.254", "192.168.1.1", "192.168.2.1"}
	for _, s := range priv {
		if !IsPrivate(MustParseAddr(s)) {
			t.Errorf("%s should be private", s)
		}
	}
	pub := []string{"9.9.9.9", "172.15.0.1", "172.32.0.1", "192.167.0.1", "8.8.8.8", "216.194.64.193"}
	for _, s := range pub {
		if IsPrivate(MustParseAddr(s)) {
			t.Errorf("%s should be public", s)
		}
	}
}

func BenchmarkBlocklistContains(b *testing.B) {
	bl := NewReservedBlocklist()
	b.ReportAllocs()
	var hits int
	for i := 0; i < b.N; i++ {
		if bl.Contains(Addr(i * 2654435761)) {
			hits++
		}
	}
	_ = hits
}

func BenchmarkAddrString(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Addr(i * 2654435761).String()
	}
}
