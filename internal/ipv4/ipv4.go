// Package ipv4 provides IPv4 address and CIDR-block arithmetic for the
// Internet-wide scanner: address parsing/formatting, block membership, and
// the RFC-reserved exclusion list of the paper's Table I.
//
// Addresses are represented as uint32 in host order throughout the
// reproduction — the scanner iterates billions of them, so they must be
// cheap scalar values rather than heap-allocated net.IP slices.
package ipv4

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Addr is an IPv4 address as a big-endian uint32 (192.168.0.1 = 0xC0A80001).
type Addr uint32

// String formats the address in dotted-quad notation.
func (a Addr) String() string {
	var b [15]byte
	buf := strconv.AppendUint(b[:0], uint64(a>>24), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>16&0xFF), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>8&0xFF), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a&0xFF), 10)
	return string(buf)
}

// ParseAddr parses dotted-quad notation. It rejects anything but exactly
// four decimal octets (no shorthand, no leading-zero octal forms).
func ParseAddr(s string) (Addr, error) {
	var a uint32
	for i := 0; i < 4; i++ {
		part := s
		if i < 3 {
			dot := strings.IndexByte(s, '.')
			if dot < 0 {
				return 0, fmt.Errorf("ipv4: invalid address %q", s)
			}
			part, s = s[:dot], s[dot+1:]
		}
		if len(part) == 0 || len(part) > 3 || (len(part) > 1 && part[0] == '0') {
			return 0, fmt.Errorf("ipv4: invalid octet %q", part)
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("ipv4: invalid octet %q", part)
		}
		a = a<<8 | uint32(n)
	}
	return Addr(a), nil
}

// MustParseAddr is ParseAddr for trusted constants; it panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Block is a CIDR block.
type Block struct {
	Base Addr
	// Bits is the prefix length (0-32).
	Bits uint8
}

// ParseBlock parses "a.b.c.d/n" CIDR notation. The base address is masked to
// the prefix, so "10.1.2.3/8" yields 10.0.0.0/8.
func ParseBlock(s string) (Block, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Block{}, fmt.Errorf("ipv4: missing prefix length in %q", s)
	}
	base, err := ParseAddr(s[:slash])
	if err != nil {
		return Block{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Block{}, fmt.Errorf("ipv4: invalid prefix length in %q", s)
	}
	b := Block{Base: base, Bits: uint8(bits)}
	b.Base &= b.mask()
	return b, nil
}

// MustParseBlock is ParseBlock for trusted constants; it panics on error.
func MustParseBlock(s string) Block {
	b, err := ParseBlock(s)
	if err != nil {
		panic(err)
	}
	return b
}

func (b Block) mask() Addr {
	if b.Bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - b.Bits))
}

// Contains reports whether a falls inside the block.
func (b Block) Contains(a Addr) bool {
	return a&b.mask() == b.Base
}

// Size returns the number of addresses covered by the block.
func (b Block) Size() uint64 {
	return 1 << (32 - b.Bits)
}

// First returns the lowest address in the block.
func (b Block) First() Addr { return b.Base }

// Last returns the highest address in the block.
func (b Block) Last() Addr { return b.Base | ^b.mask() }

// String formats the block in CIDR notation.
func (b Block) String() string {
	return fmt.Sprintf("%s/%d", b.Base, b.Bits)
}

// Space is the size of the full IPv4 address space.
const Space uint64 = 1 << 32

// Blocklist is a set of CIDR blocks with O(log n) membership testing over
// the merged, non-overlapping interval representation. The scanner consults
// it once per candidate address, so it must be allocation-free.
type Blocklist struct {
	// starts and ends are parallel sorted slices of merged [start,end]
	// address intervals (inclusive).
	starts []Addr
	ends   []Addr
	blocks []Block
	// oct classifies every /8 against the merged intervals so the
	// per-candidate scanner check usually resolves with one table load:
	// reserved space clusters into whole /8s (Table I), leaving most
	// candidates in fully-clear octets.
	oct [256]uint8
}

// Per-/8 coverage classes for Blocklist.oct.
const (
	octClear uint8 = iota // no interval touches the /8: Contains is false
	octFull               // one interval covers the whole /8: Contains is true
	octMixed              // partial coverage: fall through to binary search
)

// NewBlocklist builds a blocklist from blocks, merging overlaps.
func NewBlocklist(blocks ...Block) *Blocklist {
	bl := &Blocklist{blocks: append([]Block(nil), blocks...)}
	type iv struct{ lo, hi Addr }
	ivs := make([]iv, 0, len(blocks))
	for _, b := range blocks {
		ivs = append(ivs, iv{b.First(), b.Last()})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	for _, v := range ivs {
		n := len(bl.ends)
		if n > 0 && uint64(v.lo) <= uint64(bl.ends[n-1])+1 {
			if v.hi > bl.ends[n-1] {
				bl.ends[n-1] = v.hi
			}
			continue
		}
		bl.starts = append(bl.starts, v.lo)
		bl.ends = append(bl.ends, v.hi)
	}
	for i := range bl.starts {
		lo, hi := bl.starts[i], bl.ends[i]
		for o := uint32(lo >> 24); o <= uint32(hi>>24); o++ {
			oLo, oHi := Addr(o<<24), Addr(o<<24|0xFFFFFF)
			if lo <= oLo && hi >= oHi {
				// Intervals are disjoint, so no other one touches this /8.
				bl.oct[o] = octFull
			} else {
				bl.oct[o] = octMixed
			}
		}
	}
	return bl
}

// Contains reports whether a is covered by any block in the list.
func (bl *Blocklist) Contains(a Addr) bool {
	switch bl.oct[a>>24] {
	case octClear:
		return false
	case octFull:
		return true
	}
	// Mixed /8: find the first interval with start > a, then check its
	// predecessor. Hand-rolled — sort.Search's closure indirection is
	// measurable at one call per scanned candidate.
	lo, hi := 0, len(bl.starts)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if bl.starts[m] <= a {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo > 0 && a <= bl.ends[lo-1]
}

// Size returns the number of distinct addresses covered.
func (bl *Blocklist) Size() uint64 {
	var n uint64
	for i := range bl.starts {
		n += uint64(bl.ends[i]) - uint64(bl.starts[i]) + 1
	}
	return n
}

// Intervals returns the number of merged, disjoint address intervals.
func (bl *Blocklist) Intervals() int { return len(bl.starts) }

// Interval returns the i-th merged interval as an inclusive [lo, hi] range.
func (bl *Blocklist) Interval(i int) (lo, hi Addr) {
	return bl.starts[i], bl.ends[i]
}

// Blocks returns a copy of the blocks the list was built from (unmerged).
func (bl *Blocklist) Blocks() []Block {
	return append([]Block(nil), bl.blocks...)
}

// ReservedBlock is one row of the paper's Table I: an address block excluded
// from probing together with the RFC that reserves it.
type ReservedBlock struct {
	Block Block
	RFC   string
}

// ReservedBlocks is the exclusion list of Table I, in table order.
// Note that 255.255.255.255/32 is contained in 240.0.0.0/4; the paper's
// total of 575,931,649 counts it twice (see paperdata for the discrepancy
// accounting). The merged Blocklist deduplicates it.
var ReservedBlocks = []ReservedBlock{
	{MustParseBlock("0.0.0.0/8"), "RFC1122"},
	{MustParseBlock("10.0.0.0/8"), "RFC1918"},
	{MustParseBlock("100.64.0.0/10"), "RFC6598"},
	{MustParseBlock("127.0.0.0/8"), "RFC1122"},
	{MustParseBlock("169.254.0.0/16"), "RFC3927"},
	{MustParseBlock("172.16.0.0/12"), "RFC1918"},
	{MustParseBlock("192.0.0.0/24"), "RFC6890"},
	{MustParseBlock("192.0.2.0/24"), "RFC5737"},
	{MustParseBlock("192.88.99.0/24"), "RFC3068"},
	{MustParseBlock("192.168.0.0/16"), "RFC1918"},
	{MustParseBlock("198.18.0.0/15"), "RFC2544"},
	{MustParseBlock("198.51.100.0/24"), "RFC5737"},
	{MustParseBlock("203.0.113.0/24"), "RFC5737"},
	{MustParseBlock("224.0.0.0/4"), "RFC5771"},
	{MustParseBlock("240.0.0.0/4"), "RFC1112"},
	{MustParseBlock("255.255.255.255/32"), "RFC919"},
}

// NewReservedBlocklist returns a Blocklist covering Table I.
func NewReservedBlocklist() *Blocklist {
	blocks := make([]Block, len(ReservedBlocks))
	for i, r := range ReservedBlocks {
		blocks[i] = r.Block
	}
	return NewBlocklist(blocks...)
}

// PrivateBlocks are the RFC 1918 private-use blocks, used by the analysis to
// classify incorrect answers that point into private networks (paper §V).
var PrivateBlocks = []Block{
	MustParseBlock("10.0.0.0/8"),
	MustParseBlock("172.16.0.0/12"),
	MustParseBlock("192.168.0.0/16"),
}

// IsPrivate reports whether a lies in RFC 1918 private space.
func IsPrivate(a Addr) bool {
	for _, b := range PrivateBlocks {
		if b.Contains(a) {
			return true
		}
	}
	return false
}
