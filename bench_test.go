package openresolver

// One benchmark per table and figure of the paper's evaluation, plus
// ablations for the design choices DESIGN.md calls out. Each Table
// benchmark regenerates its table from a (scaled) campaign; the campaign
// itself is memoized per configuration so individual table benches measure
// extraction + verification cost while BenchmarkCampaign* measure the
// end-to-end runs.
//
// Run with:
//
//	go test -bench=. -benchmem
import (
	"sync"
	"testing"
	"time"

	"openresolver/internal/amplify"
	"openresolver/internal/analysis"
	"openresolver/internal/behavior"
	"openresolver/internal/capture"
	"openresolver/internal/classify"
	"openresolver/internal/clientload"
	"openresolver/internal/core"
	"openresolver/internal/dnssec"
	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
	"openresolver/internal/drift"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
	"openresolver/internal/paperdata"
	"openresolver/internal/prober"
	"openresolver/internal/scan"
	"openresolver/internal/threatintel"
)

// benchShift scales the benchmark campaigns to 1/2^benchShift of the IPv4
// space — large enough that every table is populated, small enough for
// stable benchmark iterations.
const benchShift = 10

var (
	benchMu      sync.Mutex
	benchReports = map[paperdata.Year]*analysis.Report{}
)

func benchReport(b *testing.B, y paperdata.Year) *analysis.Report {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if r, ok := benchReports[y]; ok {
		return r
	}
	ds, err := core.RunSynthetic(core.Config{Year: y, SampleShift: benchShift, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	benchReports[y] = ds.Report
	return ds.Report
}

// BenchmarkTableI regenerates the RFC exclusion table and its union size.
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bl := ipv4.NewReservedBlocklist()
		if bl.Size() != 592708864 {
			b.Fatal("wrong reserved union")
		}
		_ = analysis.RenderTableI()
	}
}

// BenchmarkTableII regenerates the campaign summary (probe counts, Q2/R1,
// R2, duration) for both years.
func BenchmarkTableII(b *testing.B) {
	r13, r18 := benchReport(b, paperdata.Y2013), benchReport(b, paperdata.Y2018)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r13.RenderTableII() == "" || r18.RenderTableII() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableIII regenerates answer presence and correctness.
func BenchmarkTableIII(b *testing.B) {
	r := benchReport(b, paperdata.Y2018)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Correctness.With() == 0 {
			b.Fatal("empty correctness")
		}
		_ = r.RenderTableIII()
	}
}

// BenchmarkTableIV regenerates the RA-bit statistics.
func BenchmarkTableIV(b *testing.B) {
	r := benchReport(b, paperdata.Y2018)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.RA.Flag0.Total()+r.RA.Flag1.Total() == 0 {
			b.Fatal("empty RA table")
		}
		_ = r.RenderTableIV()
	}
}

// BenchmarkTableV regenerates the AA-bit statistics.
func BenchmarkTableV(b *testing.B) {
	r := benchReport(b, paperdata.Y2018)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.AA.Flag1.Total() == 0 {
			b.Fatal("empty AA table")
		}
		_ = r.RenderTableV()
	}
}

// BenchmarkTableVI regenerates the rcode distribution.
func BenchmarkTableVI(b *testing.B) {
	r := benchReport(b, paperdata.Y2018)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.RenderTableVI()
	}
}

// BenchmarkTableVII regenerates the incorrect-answer form breakdown.
func BenchmarkTableVII(b *testing.B) {
	r := benchReport(b, paperdata.Y2018)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Forms.IP.Packets == 0 {
			b.Fatal("empty forms")
		}
		_ = r.RenderTableVII()
	}
}

// BenchmarkTableVIII regenerates the top-10 incorrect addresses with their
// whois-style organizations and threat-report flags.
func BenchmarkTableVIII(b *testing.B) {
	r := benchReport(b, paperdata.Y2018)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Top10) == 0 {
			b.Fatal("empty top-10")
		}
		_ = r.RenderTableVIII()
	}
}

// BenchmarkTableIX regenerates the malicious-category breakdown for both
// years (the paper's central threat-evolution comparison).
func BenchmarkTableIX(b *testing.B) {
	r13, r18 := benchReport(b, paperdata.Y2013), benchReport(b, paperdata.Y2018)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r13.MaliciousTotal.R2 == 0 || r18.MaliciousTotal.R2 == 0 {
			b.Fatal("empty malicious tables")
		}
		_ = r13.RenderTableIX()
		_ = r18.RenderTableIX()
	}
}

// BenchmarkTableX regenerates the RA/AA analysis of malicious responses.
func BenchmarkTableX(b *testing.B) {
	r := benchReport(b, paperdata.Y2018)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.MalFlags.RA0+r.MalFlags.RA1 == 0 {
			b.Fatal("empty Table X")
		}
		_ = r.RenderTableX()
	}
}

// BenchmarkGeoDistribution regenerates the in-text malicious-resolver
// country distribution.
func BenchmarkGeoDistribution(b *testing.B) {
	r := benchReport(b, paperdata.Y2018)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.MaliciousGeo) == 0 {
			b.Fatal("empty geo")
		}
		_ = r.RenderGeo()
	}
}

// BenchmarkFig1ResolutionChain measures one full Fig. 1 walk: a recursive
// resolution through root → TLD → authoritative on the simulator.
func BenchmarkFig1ResolutionChain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := netsim.New(netsim.Config{Seed: int64(i), Latency: netsim.ConstantLatency(time.Millisecond)})
		dnssrv.NewReferralServer(sim, core.RootAddr, []dnssrv.Referral{
			{Zone: "net", NSName: "a.gtld-servers.net", Addr: core.TLDAddr},
		})
		dnssrv.NewReferralServer(sim, core.TLDAddr, []dnssrv.Referral{
			{Zone: paperdata.SLD, NSName: "ns1." + paperdata.SLD, Addr: core.AuthAddr},
		})
		dnssrv.NewAuthServer(sim, dnssrv.AuthConfig{Addr: core.AuthAddr, SLD: paperdata.SLD, ClusterSize: 1000})
		var rec *dnssrv.Recursive
		node := sim.Register(ipv4.MustParseAddr("66.1.2.3"), netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
			if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
				rec.HandleResponse(msg)
			}
		}))
		rec = dnssrv.NewRecursive(node, core.RootAddr)
		var ok bool
		rec.Resolve(dnssrv.FormatProbeName(0, i%1000, paperdata.SLD), func(r dnssrv.Result) { ok = r.OK })
		if err := sim.Run(0); err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("resolution failed")
		}
	}
}

// BenchmarkFig2FlowCapture measures the Q1/Q2/R1/R2 capture-and-group path
// of Fig. 2 on a miniature campaign.
func BenchmarkFig2FlowCapture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := netsim.New(netsim.Config{Seed: int64(i), Latency: netsim.ConstantLatency(time.Millisecond)})
		dnssrv.NewReferralServer(sim, core.RootAddr, []dnssrv.Referral{
			{Zone: "net", NSName: "a.gtld-servers.net", Addr: core.TLDAddr},
		})
		dnssrv.NewReferralServer(sim, core.TLDAddr, []dnssrv.Referral{
			{Zone: paperdata.SLD, NSName: "ns1." + paperdata.SLD, Addr: core.AuthAddr},
		})
		authLog := capture.NewAuthLog()
		auth := dnssrv.NewAuthServer(sim, dnssrv.AuthConfig{
			Addr: core.AuthAddr, SLD: paperdata.SLD, ClusterSize: 64, Tap: authLog,
		})
		u, err := scan.NewUniverse(uint64(i), 26, nil) // 64 candidates
		if err != nil {
			b.Fatal(err)
		}
		it := u.Iterate()
		for j := 0; j < 4; j++ {
			a, ok := it.Next()
			if !ok {
				b.Fatal("universe too small")
			}
			behavior.NewResolver(sim, a, core.RootAddr, behavior.Honest(1))
		}
		log := capture.NewProbeLog()
		if _, err := prober.Start(sim, prober.Config{
			Addr: core.ProberAddr, Universe: u, SLD: paperdata.SLD,
			ClusterSize: 64, PacketsPerSec: 10000, Timeout: time.Second,
			Auth: auth, Log: log,
		}); err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(0); err != nil {
			b.Fatal(err)
		}
		flows := capture.GroupFlows(log.R2())
		if len(flows) == 0 {
			b.Fatal("no flows captured")
		}
	}
}

// BenchmarkFig3SubdomainClusters measures two-tier subdomain generation and
// parsing (Fig. 3).
func BenchmarkFig3SubdomainClusters(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		name := dnssrv.FormatProbeName(i%800, i%5000000, paperdata.SLD)
		pn, err := dnssrv.ParseProbeName(name, paperdata.SLD)
		if err != nil || pn.Cluster != i%800 {
			b.Fatal("round trip failed")
		}
	}
}

// BenchmarkFig4ThreatLookup measures a Cymon-style lookup with category
// aggregation (Fig. 4).
func BenchmarkFig4ThreatLookup(b *testing.B) {
	feed := threatintel.NewFeed(paperdata.Y2018, 1)
	addrs := feed.DB.Addrs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, ok := feed.DB.Lookup(addrs[i%len(addrs)])
		if !ok {
			b.Fatal("lookup miss")
		}
		if rec.Dominant() == "" {
			b.Fatal("no dominant category")
		}
	}
}

// BenchmarkAmplification measures the §II-C amplification attack
// simulation (ANY queries, record-rich zone).
func BenchmarkAmplification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := amplify.Run(amplify.Config{
			Resolvers: 100, QueriesPerResolver: 5,
			QueryType: dnswire.TypeANY, ZoneRecords: 24, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Factor < 5 {
			b.Fatal("no amplification")
		}
	}
}

// BenchmarkSubdomainReuse is the §III-B ablation: a campaign with
// subdomain reuse enabled, to contrast with BenchmarkNoSubdomainReuse.
func BenchmarkSubdomainReuse(b *testing.B) {
	clusters := benchReuseCampaign(b, false)
	b.ReportMetric(float64(clusters), "clusters")
}

// BenchmarkNoSubdomainReuse disables reuse: the same campaign consumes the
// theoretical number of clusters (the paper's 800 at full scale).
func BenchmarkNoSubdomainReuse(b *testing.B) {
	clusters := benchReuseCampaign(b, true)
	b.ReportMetric(float64(clusters), "clusters")
}

func benchReuseCampaign(b *testing.B, disable bool) int {
	b.Helper()
	var clusters int
	for i := 0; i < b.N; i++ {
		sim := netsim.New(netsim.Config{Seed: int64(i), Latency: netsim.ConstantLatency(time.Millisecond)})
		dnssrv.NewReferralServer(sim, core.RootAddr, []dnssrv.Referral{
			{Zone: "net", NSName: "a.gtld-servers.net", Addr: core.TLDAddr},
		})
		dnssrv.NewReferralServer(sim, core.TLDAddr, []dnssrv.Referral{
			{Zone: paperdata.SLD, NSName: "ns1." + paperdata.SLD, Addr: core.AuthAddr},
		})
		auth := dnssrv.NewAuthServer(sim, dnssrv.AuthConfig{
			Addr: core.AuthAddr, SLD: paperdata.SLD, ClusterSize: 32,
		})
		u, err := scan.NewUniverse(uint64(i), 23, nil) // 512 candidates
		if err != nil {
			b.Fatal(err)
		}
		it := u.Iterate()
		for j := 0; j < 20; j++ {
			a, ok := it.Next()
			if !ok {
				break
			}
			behavior.NewResolver(sim, a, core.RootAddr, behavior.Honest(1))
		}
		p, err := prober.Start(sim, prober.Config{
			Addr: core.ProberAddr, Universe: u, SLD: paperdata.SLD,
			ClusterSize: 32, PacketsPerSec: 50000, Timeout: 200 * time.Millisecond,
			Auth: auth, DisableReuse: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(0); err != nil {
			b.Fatal(err)
		}
		clusters = p.ClustersUsed()
	}
	return clusters
}

// BenchmarkCampaignSynthetic2018 measures a complete scaled synthetic
// campaign (population compile → wire synthesis → analysis).
func BenchmarkCampaignSynthetic2018(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := core.RunSynthetic(core.Config{Year: paperdata.Y2018, SampleShift: benchShift, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if ds.Report.Correctness.R2 == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCampaignSyntheticSerial pins the legacy single-goroutine
// synthesis path (Workers: 1) — the baseline the parallel runs are
// compared against.
func BenchmarkCampaignSyntheticSerial(b *testing.B) {
	benchCampaignWorkers(b, 1)
}

// BenchmarkCampaignSyntheticParallel runs the sharded worker-pool path with
// one worker per core (Workers: 0). On a multicore host the speedup over
// BenchmarkCampaignSyntheticSerial approaches the core count; the reports
// are bit-identical either way (TestSyntheticWorkersDeterministic).
func BenchmarkCampaignSyntheticParallel(b *testing.B) {
	benchCampaignWorkers(b, 0)
}

func benchCampaignWorkers(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ds, err := core.RunSynthetic(core.Config{
			Year: paperdata.Y2018, SampleShift: benchShift, Seed: int64(i), Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if ds.Report.Correctness.R2 == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCampaignSimulation2018 measures a complete scaled end-to-end
// simulation (the paper's whole measurement pipeline).
func BenchmarkCampaignSimulation2018(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := core.RunSimulation(core.Config{Year: paperdata.Y2018, SampleShift: 14, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if ds.Report.Correctness.R2 == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCampaignSimulated2013 and ...2018 are the discrete-event-core
// allocation benchmarks (BENCH_PR2.json): a full RunSimulation campaign per
// iteration with -benchmem, so allocs/op tracks the per-packet bookkeeping
// of the event queue, host table, prober, servers and resolvers.
func BenchmarkCampaignSimulated2013(b *testing.B) {
	benchCampaignSimulated(b, paperdata.Y2013)
}

func BenchmarkCampaignSimulated2018(b *testing.B) {
	benchCampaignSimulated(b, paperdata.Y2018)
}

// BenchmarkCampaignSimulatedSerial2013 and ...2018 pin the Workers=1 path
// of the same campaigns (the pre-shard engine's schedule) so the sharded
// fan-out's speedup — and its single-core overhead — are both visible in
// the BENCH_PR4.json baseline.
func BenchmarkCampaignSimulatedSerial2013(b *testing.B) {
	benchCampaignSimulatedWorkers(b, paperdata.Y2013, 1)
}

func BenchmarkCampaignSimulatedSerial2018(b *testing.B) {
	benchCampaignSimulatedWorkers(b, paperdata.Y2018, 1)
}

func benchCampaignSimulated(b *testing.B, y paperdata.Year) {
	b.Helper()
	benchCampaignSimulatedWorkers(b, y, 0)
}

func benchCampaignSimulatedWorkers(b *testing.B, y paperdata.Year, workers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ds, err := core.RunSimulation(core.Config{Year: y, SampleShift: 14, Seed: int64(i), Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if ds.Report.Correctness.R2 == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkTemporalContrast runs both campaigns back to back — the
// paper's 2013-vs-2018 comparison (§IV, Tables II–IX).
func BenchmarkTemporalContrast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
			ds, err := core.RunSynthetic(core.Config{Year: y, SampleShift: 12, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if ds.Report.MaliciousTotal.R2 == 0 {
				b.Fatal("no malicious answers")
			}
		}
	}
}

// BenchmarkValidatorSurvey measures the §VI DNSSEC validator count
// (check-repeat methodology over a simulated resolver pool).
func BenchmarkValidatorSurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := dnssec.RunSurvey(dnssec.SurveyConfig{
			Resolvers: 100, ValidatorFraction: 0.27, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Validators != 27 {
			b.Fatalf("validators = %d", res.Validators)
		}
	}
}

// BenchmarkRoleClassification measures the capture-correlation classifier
// over a scaled end-to-end campaign.
func BenchmarkRoleClassification(b *testing.B) {
	ds, err := core.RunSimulation(core.Config{
		Year: paperdata.Y2018, SampleShift: 13, Seed: 1, KeepPackets: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Re-classify from the retained captures.
	r2 := ds.R2Packets
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := classify.Classify(r2, nil)
		if len(s.Verdicts) == 0 {
			b.Fatal("no verdicts")
		}
	}
}

// BenchmarkClientExposure measures the §V client-workload exposure study.
func BenchmarkClientExposure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := clientload.Run(clientload.Config{
			Clients: 200, QueriesPerClient: 10, Resolvers: 100,
			MaliciousFraction: 0.05, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Answered == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkDriftTrend measures one epoch of the §V continuous-monitoring
// harness.
func BenchmarkDriftTrend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := drift.Trend(drift.Config{Epochs: 2, SampleShift: 12, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 2 {
			b.Fatal("missing epochs")
		}
	}
}
