// Package openresolver is a from-scratch Go reproduction of "Where Are You
// Taking Me? Behavioral Analysis of Open DNS Resolvers" (Park, Khormali,
// Mohaisen, Mohaisen — DSN 2019): an Internet-wide measurement of open DNS
// resolvers, their standards conformance (RA/AA flags, rcodes), the
// correctness of their answers, and the threat-intelligence profile of the
// manipulated answers, contrasting the 2013 and 2018 campaigns.
//
// Because the study probed the live Internet, the reproduction substitutes
// a deterministic discrete-event network simulation for the IPv4 space and
// calibrates a synthetic resolver population from the paper's own tables;
// see DESIGN.md for the full substitution map and internal/core for the
// public entry points (RunSimulation, RunSynthetic).
//
// The benchmarks in bench_test.go regenerate every table (I-X) and figure
// (1-4) of the paper's evaluation; cmd/ortables prints the full
// paper-vs-measured comparison recorded in EXPERIMENTS.md.
package openresolver
