# Standard entry points for building and validating the reproduction.
#
#   make build      compile every package and command
#   make test       full test suite (tier-1 gate), includes the chaos matrix
#   make chaos      fault-injection matrix: every impairment class and the
#                   stacked combo, plus the loss-recovery acceptance bar
#   make race       race-detector pass over the concurrent pipeline
#   make vet        static checks
#   make bench      campaign benchmarks, recorded as BENCH_PR1.json
#   make bench-sim  simulated-campaign + event-core benchmarks (BENCH_PR2 set)
#   make profile    bench-sim under -cpuprofile/-memprofile for pprof
#   make cover      test suite with coverage profile + per-function summary
#   make doccheck   every package documented (go vet + scripts/doccheck)

GO ?= go
BENCH_OUT ?= BENCH_PR1.json
PROFILE_DIR ?= profiles
COVER_OUT ?= cover.out

.PHONY: all build test chaos race vet bench bench-sim profile cover doccheck

all: build vet test

build:
	$(GO) build ./...

# `go test ./...` already runs the chaos matrix (it lives in internal/core's
# test suite), so the tier-1 gate covers adverse networks by default; the
# chaos target exists to iterate on just that suite.
test:
	$(GO) test ./...

# Fault-injection gate on its own: the impairment matrix (determinism,
# accounting invariants, bounded event queue per scenario), the 30%-burst-
# loss recovery acceptance test, and the pinned adverse-network golden.
chaos:
	$(GO) test -count=1 -run 'TestChaos|TestFaultGolden' ./internal/core/ \
		-v -timeout 10m

# The parallel synthesis engine and the accumulator merge are the only
# concurrent paths; -race over their packages keeps the gate fast while
# covering every goroutine the repo spawns. The event core, prober and DNS
# engines are single-threaded by design — -race over them guards against a
# future change accidentally introducing shared state (the retransmission
# timers and fault pipeline all run on the simulator's virtual clock).
race:
	$(GO) test -race ./internal/core/... ./internal/analysis/... \
		./internal/netsim/... ./internal/prober/... ./internal/dnssrv/... \
		./internal/obs/...

vet:
	$(GO) vet ./...

# Coverage over the whole module; the tail line is the total.
cover:
	$(GO) test -short -coverprofile $(COVER_OUT) ./...
	$(GO) tool cover -func $(COVER_OUT) | tail -n 1

# Documentation gate: go vet plus a parser-level check that every package
# under internal/ and cmd/ carries a package doc comment.
doccheck: vet
	$(GO) run ./scripts/doccheck ./internal ./cmd

bench:
	$(GO) test -run '^$$' -bench 'CampaignSynthetic(Serial|Parallel)' -benchmem -count 3 . \
		| tee /dev/stderr | $(GO) run ./scripts/bench2json > $(BENCH_OUT)

# Full simulated campaigns (both calibration years) plus the event-core
# micro-benchmarks that the PR2 optimization targets.
bench-sim:
	$(GO) test -run '^$$' -bench 'CampaignSimulated' -benchmem -count 3 .
	$(GO) test -run '^$$' -bench 'EventThroughput|TimerEnqueueDequeue|HostLookup' \
		-benchmem -count 3 ./internal/netsim

# CPU and heap profiles of the simulated campaign for pprof:
#   go tool pprof $(PROFILE_DIR)/cpu.out
profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run '^$$' -bench 'CampaignSimulated' -benchmem -count 1 \
		-cpuprofile $(PROFILE_DIR)/cpu.out -memprofile $(PROFILE_DIR)/mem.out \
		-o $(PROFILE_DIR)/bench.test .
