# Standard entry points for building and validating the reproduction.
#
#   make build   compile every package and command
#   make test    full test suite (tier-1 gate)
#   make race    race-detector pass over the concurrent pipeline
#   make vet     static checks
#   make bench   campaign benchmarks, recorded as BENCH_PR1.json

GO ?= go
BENCH_OUT ?= BENCH_PR1.json

.PHONY: all build test race vet bench

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel synthesis engine and the accumulator merge are the only
# concurrent paths; -race over their packages keeps the gate fast while
# covering every goroutine the repo spawns.
race:
	$(GO) test -race ./internal/core/... ./internal/analysis/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench 'CampaignSynthetic(Serial|Parallel)' -benchmem -count 3 . \
		| tee /dev/stderr | $(GO) run ./scripts/bench2json > $(BENCH_OUT)
