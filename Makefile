# Standard entry points for building and validating the reproduction.
#
#   make build      compile every package and command
#   make test       full test suite (tier-1 gate), includes the chaos matrix
#   make chaos      fault-injection matrix: every impairment class and the
#                   stacked combo, plus the loss-recovery acceptance bar
#   make race       race-detector pass over the concurrent pipeline
#   make crash-matrix  process-crash fault injection: kill a campaign child
#                   at random shard boundaries, resume from checkpoints,
#                   assert digest equality against the cold run
#   make vet        static checks
#   make bench      campaign benchmarks, recorded as BENCH_PR1.json
#   make bench-sim  simulated-campaign + event-core benchmarks (BENCH_PR2 set)
#   make bench-batch batched-drain benchmarks: StepBatch vs Step (PR3 set)
#   make bench-sim-par parallel vs serial sharded campaigns (BENCH_PR4.json)
#   make profile    bench-sim under -cpuprofile/-memprofile for pprof
#                   (PROFILE_PKG / PROFILE_BENCH select other suites)
#   make cover      test suite with coverage profile + per-function summary
#   make doccheck   every package documented (go vet + scripts/doccheck)
#   make smoke      2×2 orsweep grid: pinned baseline digest + pool invariance
#   make serve-smoke  same grid through the orserved HTTP API: pinned
#                   digest, digest-cache hit, clean SIGTERM drain
#   make fabric-smoke  same grid through a real coordinator + 3 worker
#                   processes: byte-identical to single-process, pinned
#                   digest, and a SIGKILLed worker's shard must requeue
#                   and converge
#   make benchdiff  fresh benchmarks vs checked-in baselines (regression gate)
#   make ci         exactly what .github/workflows/ci.yml runs

GO ?= go
BENCH_OUT ?= BENCH_PR1.json
BENCH_FRESH ?= bench_fresh.json
# Repetitions per benchmark; benchdiff collapses them to per-metric minima,
# so more runs means less scheduler noise in the gate.
BENCH_COUNT ?= 3
PROFILE_DIR ?= profiles
# Profile target knobs: which package and which benchmarks to profile.
PROFILE_PKG ?= .
PROFILE_BENCH ?= CampaignSimulated
COVER_OUT ?= cover.out
SMOKE_DIR ?= smoke-out
FABRIC_LOG_DIR ?= fabric-smoke-logs

# The loss-free 2018 cell of the smoke grid below, pinned. It is the
# FaultDigest of RunSimulation(year=2018, shift=14, seed=1) — the same
# digest family internal/core's golden tests and internal/sweep's
# TestSweepGoldenCell pin. Re-derive by running the smoke grid and reading
# cells[0].digest from the matrix JSON if a change legitimately re-baselines
# the campaign bytes.
SMOKE_BASELINE := d19bd873ab802eecb15921fb73145c7ca0ae4b5eed4d5b6aa670791ad1557d47

.PHONY: all build test chaos race crash-matrix vet bench bench-sim bench-batch benchdiff profile cover doccheck smoke serve-smoke fabric-smoke ci

all: build vet test

build:
	$(GO) build ./...

# `go test ./...` already runs the chaos matrix (it lives in internal/core's
# test suite), so the tier-1 gate covers adverse networks by default; the
# chaos target exists to iterate on just that suite.
test:
	$(GO) test ./...

# Fault-injection gate on its own: the impairment matrix (determinism,
# accounting invariants, bounded event queue per scenario), the 30%-burst-
# loss recovery acceptance test, and the pinned adverse-network golden.
chaos:
	$(GO) test -count=1 -run 'TestChaos|TestFaultGolden' ./internal/core/ \
		-v -timeout 10m

# The concurrent paths: the parallel synthesis engine, the sharded
# simulation fan-out (worker pool over private sub-simulations, DESIGN.md
# §12), the accumulator/stats merges, the sweep's cell pool, the
# checkpoint store feeding off shard workers (DESIGN.md §13), and the
# signal-to-context bridge. Each netsim.Sim, prober and DNS engine is
# single-threaded by design — -race over them guards against a future
# change accidentally sharing state across sub-simulations (everything a
# shard touches after spawn must be private or read-only; the
# worker-equivalence tests pin the bytes, this gate pins the memory model).
race:
	$(GO) test -race ./internal/core/... ./internal/analysis/... \
		./internal/netsim/... ./internal/prober/... ./internal/dnssrv/... \
		./internal/obs/... ./internal/sweep/... ./internal/sigctx/... \
		./internal/serve/... ./internal/fabric/...

# Process-crash fault injection (DESIGN.md §13): the crash matrix re-execs
# the test binary as a campaign child, kills it with SIGKILL at seeded-random
# shard boundaries (≥3 distinct kill points per scenario, both calibration
# years plus the stacked chaos impairments), resumes from the on-disk
# checkpoints, and requires the final digest to equal the never-crashed run.
crash-matrix:
	$(GO) test -count=1 -run 'TestCrash' ./internal/core/ -v -timeout 10m

vet:
	$(GO) vet ./...

# Coverage over the whole module; the tail line is the total.
cover:
	$(GO) test -short -coverprofile $(COVER_OUT) ./...
	$(GO) tool cover -func $(COVER_OUT) | tail -n 1

# Documentation gate: go vet plus a parser-level check that every package
# under internal/ and cmd/ carries a package doc comment, that the API
# reference matches the router, and that each CLI's README flag table
# matches the flags it actually registers.
doccheck: vet
	$(GO) run ./scripts/doccheck -api API.md -routes internal/serve/router.go \
		-flagdoc README.md -flagcli cmd/orsweep -flagcli cmd/orserved \
		-flagcli cmd/orfabric \
		./internal ./cmd ./scripts

bench:
	$(GO) test -run '^$$' -bench 'CampaignSynthetic(Serial|Parallel)' -benchmem -count $(BENCH_COUNT) . \
		| tee /dev/stderr | $(GO) run ./scripts/bench2json > $(BENCH_OUT)

# Full simulated campaigns (both calibration years) plus the event-core
# micro-benchmarks that the PR2 optimization targets.
bench-sim:
	$(GO) test -run '^$$' -bench 'CampaignSimulated' -benchmem -count $(BENCH_COUNT) .
	$(GO) test -run '^$$' -bench 'EventThroughput|TimerEnqueueDequeue|HostLookup' \
		-benchmem -count $(BENCH_COUNT) ./internal/netsim

# The sharded simulation head-to-head: the default parallel campaign
# (Workers=0, one goroutine per core) against the pinned serial schedule
# (Workers=1). Records the PR4 baseline consumed by make benchdiff.
bench-sim-par:
	$(GO) test -run '^$$' -bench 'CampaignSimulated(Serial)?20' -benchmem -count $(BENCH_COUNT) . \
		| tee /dev/stderr | $(GO) run ./scripts/bench2json > BENCH_PR4.json

# The batched event-core drains head-to-head: the same fan-out workload
# through the single-event Step loop and the same-timestamp StepBatch drain.
bench-batch:
	$(GO) test -run '^$$' -bench 'StepDrain|StepBatchDrain' \
		-benchmem -count $(BENCH_COUNT) ./internal/netsim

# Benchmark-regression gate: run the committed benchmark suites, fold the
# output through bench2json (repeat runs collapse to per-metric minima), and
# compare against the newest checked-in BENCH_PR<n>.json baseline. Fails on
# >25% ns/op growth or >0.1% allocs/op growth for any benchmark both sides
# know (zero-alloc benchmarks stay strict — 0 × 1.001 is still 0).
# bench_fresh.json is scratch (gitignored).
benchdiff:
	( $(GO) test -run '^$$' -bench 'CampaignSynthetic(Serial|Parallel)' -benchmem -count $(BENCH_COUNT) . ; \
	  $(GO) test -run '^$$' -bench 'CampaignSimulated' -benchmem -count $(BENCH_COUNT) . ; \
	  $(GO) test -run '^$$' -bench 'TimerEnqueueDequeue|HostLookup|StepBatchDrain' -benchmem -count $(BENCH_COUNT) ./internal/netsim ) \
	  | $(GO) run ./scripts/bench2json > $(BENCH_FRESH)
	$(GO) run ./scripts/benchdiff -fresh $(BENCH_FRESH) -alloc-ratio 1.001 -newest BENCH_PR*.json

# Sweep smoke: a 2×2 grid (2018/2013 × pristine/20% loss) at the golden
# scale, run twice with different pool sizes. Asserts the matrix is
# byte-identical across schedules and that the loss-free 2018 baseline cell
# reproduces the pinned digest.
smoke:
	rm -rf $(SMOKE_DIR) && mkdir -p $(SMOKE_DIR)
	$(GO) run ./cmd/orsweep -shift 14 -seed 1 -year 2018 -year 2013 \
		-loss none -loss loss:0.2 -workers 1 \
		-json $(SMOKE_DIR)/matrix1.json > $(SMOKE_DIR)/matrix1.txt
	$(GO) run ./cmd/orsweep -shift 14 -seed 1 -year 2018 -year 2013 \
		-loss none -loss loss:0.2 -workers 4 \
		-json $(SMOKE_DIR)/matrix4.json > $(SMOKE_DIR)/matrix4.txt
	cmp $(SMOKE_DIR)/matrix1.json $(SMOKE_DIR)/matrix4.json
	cmp $(SMOKE_DIR)/matrix1.txt $(SMOKE_DIR)/matrix4.txt
	grep -q '"digest": "$(SMOKE_BASELINE)"' $(SMOKE_DIR)/matrix1.json
	@echo "smoke: matrix invariant across pool sizes; baseline digest pinned"

# Service smoke: boot the orserved daemon, run the same smoke grid through
# the HTTP API, and assert the pinned baseline digest, a digest-cache hit
# on resubmission, and a clean SIGTERM drain.
serve-smoke:
	$(GO) run ./scripts/servesmoke -baseline $(SMOKE_BASELINE)

# Fabric smoke: the multi-process twin of `make smoke`. One coordinator
# process + three worker processes on loopback run the same 2×2 grid;
# every cell must be byte-identical to the single-process run and the
# loss-free 2018 cell must reproduce the pinned digest. A second pass
# SIGKILLs a worker mid-campaign and requires the requeued shard to
# converge to the identical output. Coordinator/worker stderr lands in
# $(FABRIC_LOG_DIR) so CI can attach it to failures.
fabric-smoke:
	rm -rf $(FABRIC_LOG_DIR) && mkdir -p $(FABRIC_LOG_DIR)
	$(GO) run ./scripts/fabricsmoke -baseline $(SMOKE_BASELINE) \
		-logdir $(FABRIC_LOG_DIR)

# The CI gauntlet, runnable locally: exactly the blocking jobs of
# .github/workflows/ci.yml (the workflow adds a non-blocking benchdiff).
ci: build vet test race chaos crash-matrix doccheck smoke serve-smoke fabric-smoke

# CPU and heap profiles for pprof — by default the simulated campaign:
#   go tool pprof $(PROFILE_DIR)/cpu.out
# Other suites via the knobs, e.g. the batched drain:
#   make profile PROFILE_PKG=./internal/netsim PROFILE_BENCH=StepBatchDrain
profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run '^$$' -bench '$(PROFILE_BENCH)' -benchmem -count 1 \
		-cpuprofile $(PROFILE_DIR)/cpu.out -memprofile $(PROFILE_DIR)/mem.out \
		-o $(PROFILE_DIR)/bench.test $(PROFILE_PKG)
